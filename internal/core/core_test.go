package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/iterstrat"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

const bigCap = 1 << 20

// localChain builds a linear src → P0 → … → P(n-1) → sink workflow of
// Local services whose runtime for item j at stage i is T[i][j].
func localChain(eng *sim.Engine, T [][]time.Duration) *workflow.Workflow {
	w := workflow.New("chain")
	w.AddSource("src")
	n := len(T)
	for i := 0; i < n; i++ {
		i := i
		name := fmt.Sprintf("P%d", i)
		model := func(req services.Request) time.Duration {
			return T[i][req.Index[0]]
		}
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService(name, services.NewLocal(eng, name, bigCap, model, echo),
			[]string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P0", "in")
	for i := 1; i < n; i++ {
		w.Connect(fmt.Sprintf("P%d", i-1), "out", fmt.Sprintf("P%d", i), "in")
	}
	w.Connect(fmt.Sprintf("P%d", n-1), "out", "sink", workflow.SinkPort)
	return w
}

func constT(nW, nD int, t time.Duration) [][]time.Duration {
	T := make([][]time.Duration, nW)
	for i := range T {
		T[i] = make([]time.Duration, nD)
		for j := range T[i] {
			T[i][j] = t
		}
	}
	return T
}

func itemValues(n int) []string {
	v := make([]string, n)
	for i := range v {
		v[i] = fmt.Sprintf("D%d", i)
	}
	return v
}

func runChain(t *testing.T, T [][]time.Duration, opts Options) *Result {
	t.Helper()
	eng := sim.NewEngine()
	wf := localChain(eng, T)
	e, err := New(eng, wf, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": itemValues(len(T[0]))})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The four execution-time equations of Sec. 3.5.3, on a constant-time
// workload (last paragraph of Sec. 3.5.4): Σ = nD·nW·T, ΣDP = ΣDSP = nW·T,
// ΣSP = (nD+nW−1)·T.
func TestEquationsConstantTimes(t *testing.T) {
	const (
		nW = 4
		nD = 5
		T  = 10 * time.Second
	)
	cases := []struct {
		opts Options
		want time.Duration
	}{
		{Options{}, nD * nW * T},
		{Options{DataParallelism: true}, nW * T},
		{Options{ServiceParallelism: true}, (nD + nW - 1) * T},
		{Options{DataParallelism: true, ServiceParallelism: true}, nW * T},
	}
	for _, c := range cases {
		res := runChain(t, constT(nW, nD, T), c.opts)
		if res.Makespan != c.want {
			t.Errorf("%s: makespan = %v, want %v", c.opts, res.Makespan, c.want)
		}
	}
}

// Massively data-parallel workflow (nW = 1): ΣDP = ΣDSP = max T0j,
// Σ = ΣSP = Σj T0j.
func TestEquationsMassivelyDataParallel(t *testing.T) {
	T := [][]time.Duration{{3 * time.Second, 7 * time.Second, 5 * time.Second}}
	var sum time.Duration
	for _, d := range T[0] {
		sum += d
	}
	cases := []struct {
		opts Options
		want time.Duration
	}{
		{Options{}, sum},
		{Options{ServiceParallelism: true}, sum},
		{Options{DataParallelism: true}, 7 * time.Second},
		{Options{DataParallelism: true, ServiceParallelism: true}, 7 * time.Second},
	}
	for _, c := range cases {
		res := runChain(t, T, c.opts)
		if res.Makespan != c.want {
			t.Errorf("%s: makespan = %v, want %v", c.opts, res.Makespan, c.want)
		}
	}
}

// Non data-intensive workflow (nD = 1): all configurations take Σi Ti0;
// no optimization introduces overhead.
func TestEquationsNonDataIntensive(t *testing.T) {
	T := [][]time.Duration{{4 * time.Second}, {6 * time.Second}, {2 * time.Second}}
	for _, opts := range []Options{
		{},
		{DataParallelism: true},
		{ServiceParallelism: true},
		{DataParallelism: true, ServiceParallelism: true},
	} {
		res := runChain(t, T, opts)
		if res.Makespan != 12*time.Second {
			t.Errorf("%s: makespan = %v, want 12s", opts, res.Makespan)
		}
	}
}

// Figure 6's scenario: variable execution times make service parallelism
// profitable even on top of data parallelism (SDSP > 1), contradicting the
// constant-time prediction of SSDP = 1.
func TestFigure6VariableTimes(t *testing.T) {
	T := constT(3, 3, 10*time.Second)
	T[0][0] = 20 * time.Second // D0 takes twice as long on P1 (resubmission)
	T[1][1] = 30 * time.Second // D1 blocked in a queue at P2

	dp := runChain(t, T, Options{DataParallelism: true})
	dsp := runChain(t, T, Options{DataParallelism: true, ServiceParallelism: true})
	if dsp.Makespan >= dp.Makespan {
		t.Fatalf("SP gave no gain under variable times: DP=%v DSP=%v", dp.Makespan, dsp.Makespan)
	}
	// DP only (stage barriers): 20 + 30 + 10 = 60s.
	if dp.Makespan != 60*time.Second {
		t.Errorf("ΣDP = %v, want 60s", dp.Makespan)
	}
	// DP+SP: critical chain D1: 10 + 30 + 10 = 50s.
	if dsp.Makespan != 50*time.Second {
		t.Errorf("ΣDSP = %v, want 50s", dsp.Makespan)
	}
}

func TestOutputsCollectedInOrder(t *testing.T) {
	res := runChain(t, constT(2, 3, time.Second), Options{DataParallelism: true, ServiceParallelism: true})
	got := res.Outputs["sink"]
	if len(got) != 3 {
		t.Fatalf("sink items = %v", got)
	}
	// Local echo services pass values through; order is by index key.
	want := []string{"D0", "D1", "D2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink outputs = %v, want %v", got, want)
		}
	}
}

func TestProvenanceDepth(t *testing.T) {
	res := runChain(t, constT(3, 2, time.Second), Options{DataParallelism: true, ServiceParallelism: true})
	items := res.Items["sink"]
	if len(items) != 2 {
		t.Fatal("missing sink items")
	}
	// src → P0 → P1 → P2: history depth 4.
	if d := items[0].History.Depth(); d != 4 {
		t.Fatalf("history depth = %d, want 4", d)
	}
	if !strings.Contains(items[0].History.Render(), "P2:out[0]( P1:out[0]( P0:out[0]( src[0] ) ) )") {
		t.Fatalf("history = %s", items[0].History.Render())
	}
}

// The causality problem (Sec. 4.1): with DP+SP, items overtake each other;
// a downstream dot product must still pair results originating from the
// same input.
func TestDotAlignmentUnderReordering(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("causality")
	w.AddSource("src")
	// A is slow for item 0 and fast for item 2; B is uniform: completions
	// cross each other.
	aModel := func(req services.Request) time.Duration {
		return time.Duration(30-10*req.Index[0]) * time.Second
	}
	a := services.NewLocal(eng, "A", bigCap, aModel, func(req services.Request) map[string]string {
		return map[string]string{"out": "a" + req.Inputs["in"]}
	})
	b := services.NewLocal(eng, "B", bigCap, services.ConstantRuntime(time.Second), func(req services.Request) map[string]string {
		return map[string]string{"out": "b" + req.Inputs["in"]}
	})
	pair := services.NewLocal(eng, "pair", bigCap, services.ConstantRuntime(time.Second), func(req services.Request) map[string]string {
		return map[string]string{"out": req.Inputs["x"] + "|" + req.Inputs["y"]}
	})
	w.AddService("A", a, []string{"in"}, []string{"out"})
	w.AddService("B", b, []string{"in"}, []string{"out"})
	pp := w.AddService("pair", pair, []string{"x", "y"}, []string{"out"})
	pp.Strategy = iterstrat.Dot(iterstrat.Port("x"), iterstrat.Port("y"))
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("src", workflow.SourcePort, "B", "in")
	w.Connect("A", "out", "pair", "x")
	w.Connect("B", "out", "pair", "y")
	w.Connect("pair", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"D0", "D1", "D2"}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs["sink"]
	want := []string{"aD0|bD0", "aD1|bD1", "aD2|bD2"}
	if len(got) != 3 {
		t.Fatalf("outputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("causality violated: outputs = %v, want %v", got, want)
		}
	}
}

func TestSynchronizationBarrier(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("sync")
	w.AddSource("src")
	w.AddService("sq", services.NewLocal(eng, "sq", bigCap, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"] + "!"}
		}), []string{"in"}, []string{"out"})
	var gotList []string
	mean := w.AddService("mean", services.NewLocal(eng, "mean", bigCap, services.ConstantRuntime(2*time.Second),
		func(req services.Request) map[string]string {
			gotList = append([]string(nil), req.Lists["vals"]...)
			return map[string]string{"out": fmt.Sprintf("mean-of-%d", len(req.Lists["vals"]))}
		}), []string{"vals"}, []string{"out"})
	mean.Synchronization = true
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "sq", "in")
	w.Connect("sq", "out", "mean", "vals")
	w.Connect("mean", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"a", "b", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotList) != 4 {
		t.Fatalf("sync received %d values, want the whole input set (4)", len(gotList))
	}
	if got := res.Outputs["sink"]; len(got) != 1 || got[0] != "mean-of-4" {
		t.Fatalf("sink = %v", got)
	}
	// All items processed in parallel (1s), then the barrier (2s): 3s.
	if res.Makespan != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s (sync must wait for all, then run once)", res.Makespan)
	}
	invs := res.Trace.ByProcessor("mean")
	if len(invs) != 1 || !invs[0].Sync {
		t.Fatalf("mean invocations = %+v, want exactly 1 sync invocation", invs)
	}
}

func TestNestedSynchronization(t *testing.T) {
	// Two sync processors in sequence: the second fires only after the
	// first completed.
	eng := sim.NewEngine()
	w := workflow.New("sync2")
	w.AddSource("src")
	mk := func(name string) *workflow.Processor {
		p := w.AddService(name, services.NewLocal(eng, name, bigCap, services.ConstantRuntime(time.Second),
			func(req services.Request) map[string]string {
				return map[string]string{"out": name}
			}), []string{"vals"}, []string{"out"})
		p.Synchronization = true
		return p
	}
	mk("s1")
	mk("s2")
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "s1", "vals")
	w.Connect("s1", "out", "s2", "vals")
	w.Connect("s2", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s (two chained barriers)", res.Makespan)
	}
	s1 := res.Trace.ByProcessor("s1")[0]
	s2 := res.Trace.ByProcessor("s2")[0]
	if s2.Started < s1.Finished {
		t.Fatal("outer sync fired before inner sync finished")
	}
}

// Figure 2: an optimization loop with a conditional output port, legal
// only in service-based workflows. P3 loops until its criterion converges.
func loopWorkflow(eng *sim.Engine, iterations int) *workflow.Workflow {
	w := workflow.New("fig2")
	w.AddSource("Source")
	p1 := services.NewLocal(eng, "P1", bigCap, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			return map[string]string{"init": req.Inputs["in"] + ":0"}
		})
	p2 := services.NewLocal(eng, "P2", bigCap, services.ConstantRuntime(time.Second), nil)
	p3 := services.NewLocal(eng, "P3", bigCap, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			v := req.Inputs["in"]
			var base string
			var n int
			fmt.Sscanf(v[strings.LastIndex(v, ":")+1:], "%d", &n)
			base = v[:strings.LastIndex(v, ":")]
			if n+1 >= iterations {
				return map[string]string{"done": fmt.Sprintf("%s:converged-after-%d", base, n+1)}
			}
			return map[string]string{"again": fmt.Sprintf("%s:%d", base, n+1)}
		})
	w.AddService("P1", p1, []string{"in"}, []string{"init"})
	w.AddService("P2", p2, []string{"crit"}, []string{"crit"})
	w.AddService("P3", p3, []string{"in"}, []string{"again", "done"})
	w.AddSink("Sink")
	w.Connect("Source", workflow.SourcePort, "P1", "in")
	w.Connect("P1", "init", "P2", "crit")
	w.Connect("P2", "crit", "P3", "in")
	w.Connect("P3", "again", "P2", "crit")
	w.Connect("P3", "done", "Sink", workflow.SinkPort)
	return w
}

func TestOptimizationLoop(t *testing.T) {
	eng := sim.NewEngine()
	w := loopWorkflow(eng, 3)
	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"Source": {"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs["Sink"]
	if len(got) != 2 {
		t.Fatalf("sink = %v, want 2 converged results", got)
	}
	for _, v := range got {
		if !strings.Contains(v, "converged-after-3") {
			t.Fatalf("loop iterated wrong number of times: %v", got)
		}
	}
	// P2 and P3 each ran 3 times per item.
	if n := len(res.Trace.ByProcessor("P3")); n != 6 {
		t.Fatalf("P3 invocations = %d, want 6", n)
	}
}

func TestLoopRequiresServiceParallelism(t *testing.T) {
	eng := sim.NewEngine()
	w := loopWorkflow(eng, 2)
	if _, err := New(eng, w, Options{DataParallelism: true}); err == nil {
		t.Fatal("cyclic workflow accepted without service parallelism")
	}
}

func TestCoordinationConstraint(t *testing.T) {
	// Two independent branches; a constraint forces bStart after aEnd even
	// with full parallelism available.
	eng := sim.NewEngine()
	w := workflow.New("constraint")
	w.AddSource("src")
	echo := func(req services.Request) map[string]string {
		return map[string]string{"out": req.Inputs["in"]}
	}
	w.AddService("a", services.NewLocal(eng, "a", bigCap, services.ConstantRuntime(10*time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddService("b", services.NewLocal(eng, "b", bigCap, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddSink("sa")
	w.AddSink("sb")
	w.Connect("src", workflow.SourcePort, "a", "in")
	w.Connect("src", workflow.SourcePort, "b", "in")
	w.Connect("a", "out", "sa", workflow.SinkPort)
	w.Connect("b", "out", "sb", workflow.SinkPort)
	w.Constrain("a", "b")

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"d0", "d1"}})
	if err != nil {
		t.Fatal(err)
	}
	aEnd := sim.Time(0)
	for _, inv := range res.Trace.ByProcessor("a") {
		if inv.Finished > aEnd {
			aEnd = inv.Finished
		}
	}
	for _, inv := range res.Trace.ByProcessor("b") {
		if inv.Started < aEnd {
			t.Fatalf("constraint violated: b started at %v before a finished at %v", inv.Started, aEnd)
		}
	}
}

func TestMaxConcurrentCap(t *testing.T) {
	T := constT(1, 4, 10*time.Second)
	res := runChain(t, T, Options{DataParallelism: true, ServiceParallelism: true, MaxConcurrent: 2})
	// 4 items, 2 at a time, 10s each: 20s.
	if res.Makespan != 20*time.Second {
		t.Fatalf("makespan = %v, want 20s with MaxConcurrent=2", res.Makespan)
	}
}

func TestMissingSourceInput(t *testing.T) {
	eng := sim.NewEngine()
	wf := localChain(eng, constT(1, 1, time.Second))
	e, err := New(eng, wf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(map[string][]string{}); err == nil {
		t.Fatal("missing source input accepted")
	}
}

func TestServiceErrorPropagates(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("fail")
	w.AddSource("src")
	fail := services.NewLocal(eng, "fail", bigCap, services.ConstantRuntime(time.Second), nil)
	w.AddService("ok", fail, []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "ok", "in")
	w.Connect("ok", "out", "sink", workflow.SinkPort)
	// Swap in a service that errors.
	p, _ := w.Proc("ok")
	p.Service = failingService{}
	e, err := New(eng, w, Options{ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(map[string][]string{"src": {"x"}}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("service error not propagated: %v", err)
	}
}

type failingService struct{}

func (failingService) Name() string { return "failing" }
func (failingService) Invoke(req services.Request, done func(services.Response)) {
	done(services.Response{Err: errors.New("boom")})
}

func TestStallDetection(t *testing.T) {
	// A coordination constraint whose prerequisite can never drain (a
	// conditional output starves it of the statically expected items)
	// leaves tuples gated forever — a stall, reported as such.
	eng := sim.NewEngine()
	w := workflow.New("stall")
	w.AddSource("src")
	half := services.NewLocal(eng, "half", bigCap, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			if req.Index[0] == 0 {
				return map[string]string{} // drops item 0
			}
			return map[string]string{"out": req.Inputs["in"]}
		})
	echo := func(req services.Request) map[string]string {
		return map[string]string{"out": req.Inputs["in"]}
	}
	w.AddService("half", half, []string{"in"}, []string{"out"})
	w.AddService("starved", services.NewLocal(eng, "starved", bigCap, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddService("gated", services.NewLocal(eng, "gated", bigCap, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddSink("s1")
	w.AddSink("s2")
	w.Connect("src", workflow.SourcePort, "half", "in")
	w.Connect("half", "out", "starved", "in")
	w.Connect("starved", "out", "s1", workflow.SinkPort)
	w.Connect("src", workflow.SourcePort, "gated", "in")
	w.Connect("gated", "out", "s2", workflow.SinkPort)
	w.Constrain("starved", "gated") // starved never drains: expects 2, gets 1

	e, err := New(eng, w, Options{ServiceParallelism: true, DataParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(map[string][]string{"src": {"a", "b"}})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestTraceTimingsConsistent(t *testing.T) {
	res := runChain(t, constT(3, 4, time.Second), Options{ServiceParallelism: true})
	if len(res.Trace.Invocations) != 12 {
		t.Fatalf("trace has %d invocations, want 12", len(res.Trace.Invocations))
	}
	for _, inv := range res.Trace.Invocations {
		if inv.Ready > inv.Started || inv.Started > inv.Finished {
			t.Fatalf("trace timing inconsistent: %+v", inv)
		}
		if inv.Err != nil {
			t.Fatalf("unexpected invocation error: %v", inv.Err)
		}
	}
	procs := res.Trace.Processors()
	if len(procs) != 3 {
		t.Fatalf("trace processors = %v", procs)
	}
}

func TestOptionsString(t *testing.T) {
	cases := map[string]Options{
		"NOP":      {},
		"DP":       {DataParallelism: true},
		"SP":       {ServiceParallelism: true},
		"JG":       {JobGrouping: true},
		"SP+DP":    {DataParallelism: true, ServiceParallelism: true},
		"SP+DP+JG": {DataParallelism: true, ServiceParallelism: true, JobGrouping: true},
	}
	for want, opts := range cases {
		if got := opts.String(); got != want {
			t.Errorf("Options%+v.String() = %q, want %q", opts, got, want)
		}
	}
}

func TestSummaryRenders(t *testing.T) {
	res := runChain(t, constT(2, 2, time.Second), Options{DataParallelism: true})
	s := res.Summary()
	for _, frag := range []string{"DP", "P0", "P1", "sink", "invocations"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestRerunSameWorkflowDefinition(t *testing.T) {
	// Strategies are cloned per enactor: running the same workflow twice
	// must not leak matcher state.
	for run := 0; run < 2; run++ {
		res := runChain(t, constT(2, 3, time.Second), Options{DataParallelism: true, ServiceParallelism: true})
		if len(res.Outputs["sink"]) != 3 {
			t.Fatalf("run %d: outputs = %v", run, res.Outputs["sink"])
		}
	}
}
