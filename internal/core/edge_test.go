package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/iterstrat"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func echoTo(port string) func(services.Request) map[string]string {
	return func(req services.Request) map[string]string {
		for _, v := range req.Inputs {
			return map[string]string{port: v}
		}
		return map[string]string{}
	}
}

// A single input port fed by two producers: the streams merge (the paper
// allows this — it is what makes loops expressible).
func TestMergedStreamsIntoOnePort(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("merge")
	w.AddSource("s1")
	w.AddSource("s2")
	a := services.NewLocal(eng, "A", 64, services.ConstantRuntime(time.Second), echoTo("out"))
	bSvc := services.NewLocal(eng, "B", 64, services.ConstantRuntime(time.Second), echoTo("out"))
	sinkward := services.NewLocal(eng, "C", 64, services.ConstantRuntime(time.Second), echoTo("out"))
	w.AddService("A", a, []string{"in"}, []string{"out"})
	w.AddService("B", bSvc, []string{"in"}, []string{"out"})
	w.AddService("C", sinkward, []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("s1", workflow.SourcePort, "A", "in")
	w.Connect("s2", workflow.SourcePort, "B", "in")
	w.Connect("A", "out", "C", "in") // both A and B feed C:in
	w.Connect("B", "out", "C", "in")
	w.Connect("C", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"s1": {"x1", "x2"}, "s2": {"y1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Outputs["sink"]); got != 3 {
		t.Fatalf("sink received %d items, want 3 (2 from A + 1 from B)", got)
	}
	if got := len(res.Trace.ByProcessor("C")); got != 3 {
		t.Fatalf("C ran %d times, want 3", got)
	}
}

// A cross product inside the enactor: n×m invocations, results indexed in
// two dimensions.
func TestCrossProductThroughEnactor(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("cross")
	pair := services.NewLocal(eng, "pair", 64, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["x"] + "*" + req.Inputs["y"]}
		})
	w.AddSource("a")
	w.AddSource("b")
	p := w.AddService("pair", pair, []string{"x", "y"}, []string{"out"})
	p.Strategy = iterstrat.Cross(iterstrat.Port("x"), iterstrat.Port("y"))
	w.AddSink("sink")
	w.Connect("a", workflow.SourcePort, "pair", "x")
	w.Connect("b", workflow.SourcePort, "pair", "y")
	w.Connect("pair", "out", "sink", workflow.SinkPort)

	for _, opts := range []Options{
		{DataParallelism: true, ServiceParallelism: true},
		{}, // barrier mode must agree on the result set
	} {
		e, err := New(eng, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"a": {"a0", "a1", "a2"}, "b": {"b0", "b1"}})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Outputs["sink"]); got != 6 {
			t.Fatalf("%s: cross emitted %d results, want 6", opts, got)
		}
		seen := make(map[string]bool)
		for _, v := range res.Outputs["sink"] {
			seen[v] = true
		}
		for _, want := range []string{"a0*b0", "a2*b1"} {
			if !seen[want] {
				t.Fatalf("%s: missing combination %s in %v", opts, want, res.Outputs["sink"])
			}
		}
	}
}

func TestWideFanOut(t *testing.T) {
	// One producer feeding 10 consumers: workflow parallelism runs all
	// branches concurrently.
	eng := sim.NewEngine()
	w := workflow.New("fan")
	w.AddSource("src")
	root := services.NewLocal(eng, "root", 64, services.ConstantRuntime(time.Second), echoTo("out"))
	w.AddService("root", root, []string{"in"}, []string{"out"})
	w.Connect("src", workflow.SourcePort, "root", "in")
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("leaf%d", i)
		svc := services.NewLocal(eng, name, 64, services.ConstantRuntime(10*time.Second), echoTo("out"))
		w.AddService(name, svc, []string{"in"}, []string{"out"})
		w.AddSink("sink" + name)
		w.Connect("root", "out", name, "in")
		w.Connect(name, "out", "sink"+name, workflow.SinkPort)
	}
	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"d"}})
	if err != nil {
		t.Fatal(err)
	}
	// 1s root + 10s leaves in parallel.
	if res.Makespan != 11*time.Second {
		t.Fatalf("makespan = %v, want 11s (branches must run in parallel)", res.Makespan)
	}
}

func TestDeepChain(t *testing.T) {
	const depth = 25
	T := constT(depth, 2, time.Second)
	res := runChain(t, T, Options{DataParallelism: true, ServiceParallelism: true})
	if res.Makespan != depth*time.Second {
		t.Fatalf("deep chain makespan = %v, want %v", res.Makespan, depth*time.Second)
	}
	items := res.Items["sink"]
	if d := items[0].History.Depth(); d != depth+1 {
		t.Fatalf("history depth = %d, want %d", d, depth+1)
	}
}

func TestSourceDirectlyToSink(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("pass")
	w.AddSource("src")
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "sink", workflow.SinkPort)
	e, err := New(eng, w, Options{ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Fatalf("pass-through makespan = %v, want 0", res.Makespan)
	}
	if got := res.Outputs["sink"]; len(got) != 2 || got[0] != "a" {
		t.Fatalf("sink = %v", got)
	}
}

func TestEmptyInputSet(t *testing.T) {
	eng := sim.NewEngine()
	wf := localChain(eng, constT(2, 1, time.Second))
	e, err := New(eng, wf, Options{ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || len(res.Outputs["sink"]) != 0 {
		t.Fatalf("empty input produced %v in %v", res.Outputs, res.Makespan)
	}
}

func TestSyncWithMultiplePorts(t *testing.T) {
	// A sync processor collecting two ports of different cardinalities.
	eng := sim.NewEngine()
	w := workflow.New("sync2port")
	var gotA, gotB int
	sync := services.NewLocal(eng, "stat", 64, services.ConstantRuntime(time.Second),
		func(req services.Request) map[string]string {
			gotA, gotB = len(req.Lists["a"]), len(req.Lists["b"])
			return map[string]string{"out": "done"}
		})
	w.AddSource("s1")
	w.AddSource("s2")
	p := w.AddService("stat", sync, []string{"a", "b"}, []string{"out"})
	p.Synchronization = true
	w.AddSink("sink")
	w.Connect("s1", workflow.SourcePort, "stat", "a")
	w.Connect("s2", workflow.SourcePort, "stat", "b")
	w.Connect("stat", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(map[string][]string{"s1": {"x", "y", "z"}, "s2": {"q"}}); err != nil {
		t.Fatal(err)
	}
	if gotA != 3 || gotB != 1 {
		t.Fatalf("sync lists = %d/%d, want 3/1", gotA, gotB)
	}
}

func TestWorkflowAccessorAfterGrouping(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := wrapperChain(t, eng, g)
	e, err := New(eng, w, Options{JobGrouping: true, DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Workflow().Proc("A+B+C"); !ok {
		t.Fatal("Workflow() does not expose the grouped graph")
	}
	// The input workflow object is untouched.
	if _, ok := w.Proc("A"); !ok {
		t.Fatal("original workflow mutated")
	}
}

func TestTraceJobCountWithRetries(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quietGrid(eng, 8).Config() // get quiet overheads
	cfg.Failures.Probability = 0.5
	cfg.Failures.DetectDelay = time.Second
	cfg.Failures.MaxRetries = 20
	cfg.Seed = 9
	g := grid.New(eng, cfg)
	g.Catalog().Register("gfn://x", 1)
	w := workflow.New("retry")
	w.AddSource("src")
	w.AddService("W", wrapperFor(t, g, "W", time.Second), []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "W", "in")
	w.Connect("W", "out", "sink", workflow.SinkPort)
	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"gfn://x", "gfn://x", "gfn://x", "gfn://x"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.JobCount() <= 4 {
		t.Fatalf("JobCount = %d, want > 4 with 50%% failures (resubmissions counted)", res.Trace.JobCount())
	}
}

func TestSummaryMentionsGroups(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	g.Catalog().Register("gfn://in0", 1)
	w := wrapperChain(t, eng, g)
	e, err := New(eng, w, Options{JobGrouping: true, DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"gfn://in0"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary(), "A+B+C") {
		t.Fatalf("summary missing grouped processor:\n%s", res.Summary())
	}
}
