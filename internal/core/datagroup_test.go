package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// singleStage builds src → W → sink with one wrapper-backed processor.
func singleStage(t *testing.T, eng *sim.Engine, g *grid.Grid, runtime time.Duration) *workflow.Workflow {
	t.Helper()
	w := workflow.New("stage")
	w.AddSource("src")
	w.AddService("W", wrapperFor(t, g, "W", runtime), []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "W", "in")
	w.Connect("W", "out", "sink", workflow.SinkPort)
	return w
}

func runDataGroup(t *testing.T, n, groupSize int) (*Result, *grid.Grid) {
	t.Helper()
	eng := sim.NewEngine()
	g := quietGrid(eng, 64)
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("gfn://in%d", i)
		g.Catalog().Register(inputs[i], 1)
	}
	w := singleStage(t, eng, g, 30*time.Second)
	e, err := New(eng, w, Options{
		DataParallelism:    true,
		ServiceParallelism: true,
		DataGroupSize:      groupSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": inputs})
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestDataGroupingReducesJobs(t *testing.T) {
	_, g1 := runDataGroup(t, 8, 1)
	_, g4 := runDataGroup(t, 8, 4)
	if got := len(g1.Records()); got != 8 {
		t.Fatalf("ungrouped jobs = %d, want 8", got)
	}
	if got := len(g4.Records()); got != 2 {
		t.Fatalf("grouped jobs = %d, want 2 (batches of 4)", got)
	}
}

func TestDataGroupingPreservesOutputs(t *testing.T) {
	r1, _ := runDataGroup(t, 9, 1)
	r4, _ := runDataGroup(t, 9, 4)
	a, b := r1.Outputs["sink"], r4.Outputs["sink"]
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("outputs: %d vs %d, want 9 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDataGroupingTradeoff(t *testing.T) {
	// One overhead per batch, but batches serialize their members:
	// makespan(k=1) < makespan(k=8) on an uncontended grid (full
	// parallelism wins when overhead is small), while job count shrinks
	// 8:1. The grid-load-dependent sweet spot is exercised by the
	// BenchmarkAblationDataGrouping sweep.
	r1, _ := runDataGroup(t, 8, 1)
	r8, g8 := runDataGroup(t, 8, 8)
	if len(g8.Records()) != 1 {
		t.Fatalf("k=8 jobs = %d, want 1", len(g8.Records()))
	}
	// 8 invocations of 30s in one job: ≥ 240s compute.
	if r8.Makespan < 240*time.Second {
		t.Fatalf("batched makespan = %v, want ≥ 240s of serialized compute", r8.Makespan)
	}
	if r1.Makespan >= r8.Makespan {
		t.Fatalf("on a quiet grid full parallelism should win: k=1 %v vs k=8 %v",
			r1.Makespan, r8.Makespan)
	}
}

func TestDataGroupingBatchCommandComposed(t *testing.T) {
	_, g := runDataGroup(t, 4, 4)
	recs := g.Records()
	if len(recs) != 1 {
		t.Fatalf("jobs = %d", len(recs))
	}
	cmd := recs[0].Spec.Command
	// Four composed command lines in one job.
	if got := countOccurrences(cmd, " && "); got != 3 {
		t.Fatalf("composed command has %d separators, want 3: %q", got, cmd)
	}
	if recs[0].Spec.Runtime < 120*time.Second {
		t.Fatalf("batch runtime = %v, want sum of members (≥120s)", recs[0].Spec.Runtime)
	}
}

func TestDataGroupingRespectsPartialBatches(t *testing.T) {
	// 10 items in batches of 4: 4+4+2 → 3 jobs.
	_, g := runDataGroup(t, 10, 4)
	if got := len(g.Records()); got != 3 {
		t.Fatalf("jobs = %d, want 3 (4+4+2)", got)
	}
}

func TestDataGroupingIgnoredWithoutDP(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 64)
	for i := 0; i < 4; i++ {
		g.Catalog().Register(fmt.Sprintf("gfn://in%d", i), 1)
	}
	w := singleStage(t, eng, g, 10*time.Second)
	e, err := New(eng, w, Options{ServiceParallelism: true, DataGroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(map[string][]string{"src": {"gfn://in0", "gfn://in1", "gfn://in2", "gfn://in3"}}); err != nil {
		t.Fatal(err)
	}
	// Without DP the service is serialized anyway; batching must not kick in.
	if got := len(g.Records()); got != 4 {
		t.Fatalf("jobs = %d, want 4 (no batching without data parallelism)", got)
	}
}

func TestDataGroupingIgnoredForLocalServices(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("local")
	w.AddSource("src")
	echo := func(req services.Request) map[string]string {
		return map[string]string{"out": req.Inputs["in"]}
	}
	w.AddService("L", services.NewLocal(eng, "L", 64, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "L", "in")
	w.Connect("L", "out", "sink", workflow.SinkPort)
	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true, DataGroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["sink"]) != 3 {
		t.Fatalf("outputs = %v", res.Outputs["sink"])
	}
	// All three ran concurrently: batching must not serialize locals.
	if res.Makespan != time.Second {
		t.Fatalf("makespan = %v, want 1s", res.Makespan)
	}
}

func TestInvokeBatchDirectly(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	g.Catalog().Register("gfn://x", 1)
	w := wrapperFor(t, g, "W", 10*time.Second)
	var resps []services.Response
	reqs := []services.Request{
		{Index: []int{0}, Inputs: map[string]string{"in": "gfn://x"}},
		{Index: []int{1}, Inputs: map[string]string{"in": "gfn://x"}},
		{Index: []int{2}, Inputs: map[string]string{"in": "gfn://x"}},
	}
	w.InvokeBatch(reqs, func(rs []services.Response) { resps = rs })
	eng.Run()
	if len(resps) != 3 {
		t.Fatalf("responses = %d", len(resps))
	}
	seen := map[string]bool{}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("response %d: %v", i, r.Err)
		}
		out := r.Outputs["out"]
		if out == "" || seen[out] {
			t.Fatalf("batch outputs not distinct: %v", resps)
		}
		seen[out] = true
		if !g.Catalog().Has(out) {
			t.Fatalf("batch output %q not registered", out)
		}
		if len(r.Jobs) != 1 || r.Jobs[0] != resps[0].Jobs[0] {
			t.Fatal("batch responses must share the single job record")
		}
	}
}

func TestInvokeBatchSingleFallsBack(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	g.Catalog().Register("gfn://x", 1)
	w := wrapperFor(t, g, "W", time.Second)
	var got []services.Response
	w.InvokeBatch([]services.Request{{Index: []int{0}, Inputs: map[string]string{"in": "gfn://x"}}},
		func(rs []services.Response) { got = rs })
	eng.Run()
	if len(got) != 1 || got[0].Err != nil {
		t.Fatalf("single-request batch: %+v", got)
	}
}

func TestInvokeBatchEmptyPanics(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 1)
	w := wrapperFor(t, g, "W", time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("empty batch did not panic")
		}
	}()
	w.InvokeBatch(nil, func([]services.Response) {})
}

func TestInvokeBatchUnboundInput(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := wrapperFor(t, g, "W", time.Second)
	var got []services.Response
	w.InvokeBatch([]services.Request{
		{Index: []int{0}, Inputs: map[string]string{"in": "gfn://x"}},
		{Index: []int{1}, Inputs: map[string]string{}}, // unbound
	}, func(rs []services.Response) { got = rs })
	eng.Run()
	if len(got) != 2 || got[0].Err == nil || got[1].Err == nil {
		t.Fatalf("unbound input in batch not reported on all members: %+v", got)
	}
}

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

func TestDataGroupingWindowBatchesStreams(t *testing.T) {
	// Two-stage chain under streaming: stage-2 items arrive one at a time.
	// Without a window, stage 2 cannot batch; with one, it can.
	run := func(window time.Duration) int {
		eng := sim.NewEngine()
		g := quietGrid(eng, 64)
		inputs := make([]string, 8)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("gfn://in%d", i)
			g.Catalog().Register(inputs[i], 1)
		}
		w := workflow.New("two")
		w.AddSource("src")
		w.AddService("W1", wrapperFor(t, g, "W1", 10*time.Second), []string{"in"}, []string{"out"})
		w.AddService("W2", wrapperFor(t, g, "W2", 10*time.Second), []string{"in"}, []string{"out"})
		w.AddSink("sink")
		w.Connect("src", workflow.SourcePort, "W1", "in")
		w.Connect("W1", "out", "W2", "in")
		w.Connect("W2", "out", "sink", workflow.SinkPort)
		e, err := New(eng, w, Options{
			DataParallelism:    true,
			ServiceParallelism: true,
			DataGroupSize:      4,
			DataGroupWindow:    window,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"src": inputs})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs["sink"]) != 8 {
			t.Fatalf("outputs = %d", len(res.Outputs["sink"]))
		}
		w2jobs := 0
		for _, rec := range g.Records() {
			if strings.HasPrefix(rec.Spec.Name, "W2") {
				w2jobs++
			}
		}
		return w2jobs
	}
	noWindow := run(0)
	withWindow := run(time.Minute)
	if withWindow >= noWindow {
		t.Fatalf("window did not improve stage-2 batching: %d vs %d jobs", withWindow, noWindow)
	}
	if withWindow > 3 {
		t.Fatalf("stage-2 jobs with window = %d, want ≤ 3 (batches of up to 4)", withWindow)
	}
}

func TestDataGroupingWindowFlushesPartialBatch(t *testing.T) {
	// 3 items, batch size 4, window 30s: the window must flush the
	// under-filled batch rather than stall.
	eng := sim.NewEngine()
	g := quietGrid(eng, 64)
	for i := 0; i < 3; i++ {
		g.Catalog().Register(fmt.Sprintf("gfn://in%d", i), 1)
	}
	w := singleStage(t, eng, g, 10*time.Second)
	e, err := New(eng, w, Options{
		DataParallelism:    true,
		ServiceParallelism: true,
		DataGroupSize:      4,
		DataGroupWindow:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"gfn://in0", "gfn://in1", "gfn://in2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["sink"]) != 3 {
		t.Fatalf("outputs = %v", res.Outputs["sink"])
	}
	if len(g.Records()) != 1 {
		t.Fatalf("jobs = %d, want 1 (flushed partial batch)", len(g.Records()))
	}
	// The batch waited out the window before submission.
	if got := g.Records()[0].Submitted; got != sim.Time(30*time.Second) {
		t.Fatalf("batch submitted at %v, want 30s (after the window)", got)
	}
}
