package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// TestStartConcurrentEnactors drives two independent enactors on one
// shared engine — the campaign execution mode — and checks both complete
// with the same makespans they would have alone.
func TestStartConcurrentEnactors(t *testing.T) {
	eng := sim.NewEngine()
	opts := Options{DataParallelism: true, ServiceParallelism: true}
	const nD = 4
	mk := func() *Enactor {
		e, err := New(eng, localChain(eng, constT(3, nD, 10*time.Second)), opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	var ra, rb *Result
	if err := a.Start(map[string][]string{"src": itemValues(nD)}, func(r *Result, err error) {
		if err != nil {
			t.Errorf("a failed: %v", err)
		}
		ra = r
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(map[string][]string{"src": itemValues(nD)}, func(r *Result, err error) {
		if err != nil {
			t.Errorf("b failed: %v", err)
		}
		rb = r
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ra == nil || rb == nil {
		t.Fatal("an enactor never completed")
	}
	// Local services are uncontended between the two enactors, so both
	// behave as if alone: ΣDSP = nW·T.
	want := 30 * time.Second
	if ra.Makespan != want || rb.Makespan != want {
		t.Fatalf("makespans %v/%v, want %v", ra.Makespan, rb.Makespan, want)
	}
	if len(ra.Outputs["sink"]) != nD || len(rb.Outputs["sink"]) != nD {
		t.Fatal("missing sink outputs")
	}
}

// TestStartOffsetMakespanIsRelative: an enactor started at t>0 reports a
// makespan relative to its start, not to the epoch.
func TestStartOffsetMakespanIsRelative(t *testing.T) {
	eng := sim.NewEngine()
	e, err := New(eng, localChain(eng, constT(2, 3, 10*time.Second)),
		Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	offset := sim.Time(5 * time.Minute)
	eng.At(offset, func() {
		if err := e.Start(map[string][]string{"src": itemValues(3)}, func(r *Result, err error) {
			if err != nil {
				t.Errorf("run failed: %v", err)
			}
			res = r
		}); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if res == nil {
		t.Fatal("never completed")
	}
	if res.Makespan != 20*time.Second {
		t.Fatalf("makespan %v, want 20s (relative to start)", res.Makespan)
	}
	if eng.Now() != offset+sim.Time(20*time.Second) {
		t.Fatalf("finished at %v", eng.Now())
	}
}

func TestStartValidation(t *testing.T) {
	eng := sim.NewEngine()
	e, err := New(eng, localChain(eng, constT(1, 1, time.Second)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(map[string][]string{"src": {"D0"}}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if err := e.Start(map[string][]string{}, func(*Result, error) {}); err == nil {
		t.Fatal("missing source input accepted")
	}
	if err := e.Start(map[string][]string{"src": {"D0"}}, func(*Result, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(map[string][]string{"src": {"D0"}}, func(*Result, error) {}); err == nil {
		t.Fatal("double Start accepted")
	}
}

// TestStartFailureNotifiesOnce: a failing service reports through the
// callback exactly once, even with other invocations still in flight.
func TestStartFailureNotifiesOnce(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("failing")
	w.AddSource("src")
	// A service that errors on one specific item while others are running.
	boom := &erroringService{eng: eng, badItem: "D1"}
	w.AddService("P", boom, []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P", "in")
	w.Connect("P", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var got error
	if err := e.Start(map[string][]string{"src": itemValues(4)}, func(r *Result, err error) {
		calls++
		got = err
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if calls != 1 {
		t.Fatalf("completion callback ran %d times", calls)
	}
	if got == nil || !errors.Is(got, errBoom) {
		t.Fatalf("err = %v, want errBoom", got)
	}
}

// TestFailurePropagationStops: once an execution fails, completions of
// invocations already in flight must not deliver outputs or pump new
// invocations — on a shared engine, a dead tenant would otherwise keep
// submitting its whole remaining workflow.
func TestFailurePropagationStops(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("failing-chain")
	w.AddSource("src")
	boom := &erroringService{eng: eng, badItem: "D1"}
	counter := &countingService{eng: eng}
	w.AddService("P1", boom, []string{"in"}, []string{"out"})
	w.AddService("P2", counter, []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P1", "in")
	w.Connect("P1", "out", "P2", "in")
	w.Connect("P2", "out", "sink", workflow.SinkPort)

	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	if err := e.Start(map[string][]string{"src": itemValues(10)}, func(r *Result, err error) {
		failed = err != nil
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run() // drain everything, as a shared campaign engine would
	if !failed {
		t.Fatal("run did not fail")
	}
	// All ten P1 completions land at the same instant; only those firing
	// before D1's failure (just D0, which precedes it in schedule order)
	// may have delivered downstream.
	if counter.invocations > 1 {
		t.Fatalf("failed execution kept pumping: downstream service ran %d times", counter.invocations)
	}
}

var errBoom = errors.New("boom")

type erroringService struct {
	eng     *sim.Engine
	badItem string
}

func (s *erroringService) Name() string { return "erroring" }

func (s *erroringService) Invoke(req services.Request, done func(services.Response)) {
	bad := req.Inputs["in"] == s.badItem
	s.eng.Schedule(10*time.Second, func() {
		if bad {
			done(services.Response{Err: errBoom})
			return
		}
		done(services.Response{Outputs: map[string]string{"out": req.Inputs["in"]}})
	})
}

// TestSetDataGroupSizeMidRun retunes batching while invocations are
// queued: items admitted after the change are batched, shrinking the
// number of service executions.
func TestSetDataGroupSizeMidRun(t *testing.T) {
	eng := sim.NewEngine()
	counter := &countingService{eng: eng}
	w := workflow.New("batched")
	w.AddSource("src")
	w.AddService("P", counter, []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P", "in")
	w.Connect("P", "out", "sink", workflow.SinkPort)

	// SetDataGroupSize only applies to wrapper-backed services; on a
	// workflow with none it must be a safe no-op at any instant.
	e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	e.SetDataGroupSize(8) // before Start
	var res *Result
	if err := e.Start(map[string][]string{"src": itemValues(3)}, func(r *Result, err error) {
		if err != nil {
			t.Errorf("run failed: %v", err)
		}
		res = r
	}); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(time.Second, func() { e.SetDataGroupSize(0) }) // mid-run, clamped to 1
	eng.Run()
	if res == nil {
		t.Fatal("never completed")
	}
	if counter.invocations != 3 {
		t.Fatalf("local service saw %d invocations, want 3 (batching must not apply)", counter.invocations)
	}
	if e.Options().DataGroupSize != 1 {
		t.Fatalf("DataGroupSize = %d after clamped retune", e.Options().DataGroupSize)
	}
}

type countingService struct {
	eng         *sim.Engine
	invocations int
}

func (s *countingService) Name() string { return "counting" }

func (s *countingService) Invoke(req services.Request, done func(services.Response)) {
	s.invocations++
	s.eng.Schedule(time.Second, func() {
		done(services.Response{Outputs: map[string]string{"out": req.Inputs["in"]}})
	})
}

func TestProgress(t *testing.T) {
	eng := sim.NewEngine()
	e, err := New(eng, localChain(eng, constT(2, 5, 10*time.Second)),
		Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, known := e.Progress(); known {
		t.Fatal("Progress known before Start")
	}
	var finishedRun bool
	if err := e.Start(map[string][]string{"src": itemValues(5)}, func(*Result, error) {
		finishedRun = true
	}); err != nil {
		t.Fatal(err)
	}
	fin, exp, known := e.Progress()
	if !known || exp != 10 || fin != 0 {
		t.Fatalf("at start: finished=%d expected=%d known=%v, want 0/10/true", fin, exp, known)
	}
	eng.Run()
	if !finishedRun {
		t.Fatal("run incomplete")
	}
	fin, exp, known = e.Progress()
	if !known || fin != exp || fin != 10 {
		t.Fatalf("at end: finished=%d expected=%d known=%v, want 10/10/true", fin, exp, known)
	}
}
