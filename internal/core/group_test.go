package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/iterstrat"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// quietGrid is a deterministic grid with fixed overheads.
func quietGrid(eng *sim.Engine, nodes int) *grid.Grid {
	cfg := grid.IdealConfig(nodes)
	cfg.Overheads = grid.OverheadConfig{
		SubmitMean:   2 * time.Second,
		BrokerMean:   3 * time.Second,
		DispatchMean: 5 * time.Second,
	}
	return grid.New(eng, cfg)
}

// wrapperFor builds a single-input single-output wrapper named name.
func wrapperFor(t *testing.T, g *grid.Grid, name string, runtime time.Duration) *services.Wrapper {
	t.Helper()
	xml := fmt.Sprintf(`<description><executable name=%q>
<access type="URL"><path value="http://colors.unice.fr"/></access>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable></description>`, name)
	d, err := descriptor.Parse([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	w, err := services.NewWrapper(g, d, services.ConstantRuntime(runtime), map[string]float64{"out": 1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// wrapperChain builds src → A → B → C → sink with wrapper-backed
// processors whose port names follow their descriptors.
func wrapperChain(t *testing.T, eng *sim.Engine, g *grid.Grid) *workflow.Workflow {
	t.Helper()
	w := workflow.New("wchain")
	w.AddSource("src")
	for _, name := range []string{"A", "B", "C"} {
		w.AddService(name, wrapperFor(t, g, name, 30*time.Second), []string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("B", "out", "C", "in")
	w.Connect("C", "out", "sink", workflow.SinkPort)
	return w
}

func TestAutoGroupChainCollapses(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := wrapperChain(t, eng, g)
	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range grouped.Processors() {
		if p.Kind == workflow.KindService {
			names = append(names, p.Name)
		}
	}
	if len(names) != 1 || names[0] != "A+B+C" {
		t.Fatalf("grouped processors = %v, want single A+B+C", names)
	}
	gp, _ := grouped.Proc("A+B+C")
	if len(gp.InPorts) != 1 || gp.InPorts[0] != "A.in" {
		t.Fatalf("group in-ports = %v, want [A.in]", gp.InPorts)
	}
	if len(gp.OutPorts) != 1 || gp.OutPorts[0] != "out" {
		t.Fatalf("group out-ports = %v", gp.OutPorts)
	}
	if err := grouped.Validate(); err != nil {
		t.Fatalf("grouped workflow invalid: %v", err)
	}
	// The original workflow is untouched.
	if len(w.Processors()) != 5 {
		t.Fatal("AutoGroup mutated the input workflow")
	}
}

func TestGroupingReducesJobsAndOverhead(t *testing.T) {
	run := func(jg bool) (*Result, int) {
		eng := sim.NewEngine()
		g := quietGrid(eng, 16)
		for i := 0; i < 3; i++ {
			g.Catalog().Register(fmt.Sprintf("gfn://in%d", i), 7.8)
		}
		w := wrapperChain(t, eng, g)
		e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true, JobGrouping: jg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"src": {"gfn://in0", "gfn://in1", "gfn://in2"}})
		if err != nil {
			t.Fatal(err)
		}
		return res, len(g.Records())
	}
	plain, plainJobs := run(false)
	grouped, groupedJobs := run(true)
	if plainJobs != 9 || groupedJobs != 3 {
		t.Fatalf("jobs: plain=%d grouped=%d, want 9 and 3", plainJobs, groupedJobs)
	}
	if grouped.Makespan >= plain.Makespan {
		t.Fatalf("grouping did not speed up: %v vs %v", grouped.Makespan, plain.Makespan)
	}
}

func TestAutoGroupRespectsFanOut(t *testing.T) {
	// A feeds both B and C: A cannot be fused with either.
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := workflow.New("fan")
	w.AddSource("src")
	w.AddService("A", wrapperFor(t, g, "A", time.Second), []string{"in"}, []string{"out"})
	w.AddService("B", wrapperFor(t, g, "B", time.Second), []string{"in"}, []string{"out"})
	w.AddService("C", wrapperFor(t, g, "C", time.Second), []string{"in"}, []string{"out"})
	w.AddSink("sb")
	w.AddSink("sc")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("A", "out", "C", "in")
	w.Connect("B", "out", "sb", workflow.SinkPort)
	w.Connect("C", "out", "sc", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped.Processors()) != len(w.Processors()) {
		t.Fatal("fan-out chain was grouped; A's outputs are needed by two processors")
	}
}

func TestAutoGroupRespectsSinkConsumer(t *testing.T) {
	// A's output goes to B and to a sink: not groupable (the intermediate
	// must be published).
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := workflow.New("tap")
	w.AddSource("src")
	w.AddService("A", wrapperFor(t, g, "A", time.Second), []string{"in"}, []string{"out"})
	w.AddService("B", wrapperFor(t, g, "B", time.Second), []string{"in"}, []string{"out"})
	w.AddSink("tap")
	w.AddSink("end")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("A", "out", "tap", workflow.SinkPort)
	w.Connect("B", "out", "end", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grouped.Proc("A+B"); ok {
		t.Fatal("A was grouped although a sink also consumes its output")
	}
}

func TestAutoGroupRespectsSync(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := workflow.New("sync")
	w.AddSource("src")
	w.AddService("A", wrapperFor(t, g, "A", time.Second), []string{"in"}, []string{"out"})
	s := w.AddService("S", wrapperFor(t, g, "S", time.Second), []string{"in"}, []string{"out"})
	s.Synchronization = true
	w.AddSink("end")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "S", "in")
	w.Connect("S", "out", "end", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grouped.Proc("A+S"); ok {
		t.Fatal("synchronization processor was grouped")
	}
}

func TestAutoGroupRespectsCrossStrategy(t *testing.T) {
	// B crosses A's output with another stream: invocation counts differ,
	// so A+B must not be fused.
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := workflow.New("crossed")
	w.AddSource("s1")
	w.AddSource("s2")
	w.AddService("A", wrapperFor(t, g, "A", time.Second), []string{"in"}, []string{"out"})
	bXML := `<description><executable name="B">
<access type="URL"><path value="http://x"/></access>
<input name="left" option="-l"><access type="GFN"/></input>
<input name="right" option="-r"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable></description>`
	bd, err := descriptor.Parse([]byte(bXML))
	if err != nil {
		t.Fatal(err)
	}
	bw, err := services.NewWrapper(g, bd, services.ConstantRuntime(time.Second), map[string]float64{"out": 1})
	if err != nil {
		t.Fatal(err)
	}
	b := w.AddService("B", bw, []string{"left", "right"}, []string{"out"})
	b.Strategy = iterstrat.Cross(iterstrat.Port("left"), iterstrat.Port("right"))
	w.AddSink("end")
	w.Connect("s1", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "left")
	w.Connect("s2", workflow.SourcePort, "B", "right")
	w.Connect("B", "out", "end", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grouped.Proc("A+B"); ok {
		t.Fatal("cross-strategy consumer was grouped")
	}
}

func TestAutoGroupLeavesLocalServices(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("local")
	w.AddSource("src")
	echo := func(req services.Request) map[string]string {
		return map[string]string{"out": req.Inputs["in"]}
	}
	w.AddService("A", services.NewLocal(eng, "A", 4, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddService("B", services.NewLocal(eng, "B", 4, services.ConstantRuntime(time.Second), echo),
		[]string{"in"}, []string{"out"})
	w.AddSink("end")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("B", "out", "end", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped.Processors()) != len(w.Processors()) {
		t.Fatal("local (non-wrapper) services were grouped; no descriptors are available for them")
	}
}

// The central correctness property of the optimizations: the produced data
// set is identical under every combination of DP, SP, and JG — only the
// timing changes (Sec. 5.5: "the workflow manager never leads to
// performance drops", and results must remain the results).
func TestOutputsInvariantAcrossConfigurations(t *testing.T) {
	run := func(opts Options) map[string][]string {
		eng := sim.NewEngine()
		g := quietGrid(eng, 16)
		for i := 0; i < 4; i++ {
			g.Catalog().Register(fmt.Sprintf("gfn://in%d", i), 7.8)
		}
		w := wrapperChain(t, eng, g)
		e, err := New(eng, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"src": {"gfn://in0", "gfn://in1", "gfn://in2", "gfn://in3"}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	var reference map[string][]string
	for _, opts := range allOptionCombos() {
		got := run(opts)
		// Grouped runs mint GFNs under the group name; compare the item
		// *identity* (index structure and count) plus value suffixes.
		if reference == nil {
			reference = got
			continue
		}
		if len(got["sink"]) != len(reference["sink"]) {
			t.Fatalf("%s: %d sink items, want %d", opts, len(got["sink"]), len(reference["sink"]))
		}
		for i, v := range got["sink"] {
			ref := reference["sink"][i]
			if suffixAfterSlash(v) != suffixAfterSlash(ref) {
				t.Fatalf("%s: sink[%d] = %q, reference %q", opts, i, v, ref)
			}
		}
	}
}

// suffixAfterSlash strips the producer prefix of a minted GFN, keeping the
// output name, index key, and per-key sequence number.
func suffixAfterSlash(v string) string {
	i := strings.LastIndex(v, "/")
	return v[i+1:]
}

func allOptionCombos() []Options {
	var out []Options
	for _, dp := range []bool{false, true} {
		for _, sp := range []bool{false, true} {
			for _, jg := range []bool{false, true} {
				out = append(out, Options{DataParallelism: dp, ServiceParallelism: sp, JobGrouping: jg})
			}
		}
	}
	return out
}

func TestGroupedRunDeterministic(t *testing.T) {
	run := func() time.Duration {
		eng := sim.NewEngine()
		g := quietGrid(eng, 16)
		for i := 0; i < 3; i++ {
			g.Catalog().Register(fmt.Sprintf("gfn://in%d", i), 7.8)
		}
		w := wrapperChain(t, eng, g)
		e, err := New(eng, w, Options{DataParallelism: true, ServiceParallelism: true, JobGrouping: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"src": {"gfn://in0", "gfn://in1", "gfn://in2"}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("grouped runs not deterministic: %v vs %v", a, b)
	}
}

func TestAutoGroupPreservesConstants(t *testing.T) {
	eng := sim.NewEngine()
	g := quietGrid(eng, 8)
	w := workflow.New("const")
	w.AddSource("src")
	// A has a parameter input bound as a constant.
	xml := `<description><executable name="A">
<access type="URL"><path value="http://x"/></access>
<input name="in" option="-i"><access type="GFN"/></input>
<input name="scale" option="-s"/>
<output name="out" option="-o"><access type="GFN"/></output>
</executable></description>`
	d, err := descriptor.Parse([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	aw, err := services.NewWrapper(g, d, services.ConstantRuntime(time.Second), map[string]float64{"out": 1})
	if err != nil {
		t.Fatal(err)
	}
	a := w.AddService("A", aw, []string{"in"}, []string{"out"})
	a.Constants = map[string]string{"scale": "1.5"}
	w.AddService("B", wrapperFor(t, g, "B", time.Second), []string{"in"}, []string{"out"})
	w.AddSink("end")
	w.Connect("src", workflow.SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("B", "out", "end", workflow.SinkPort)

	grouped, err := AutoGroup(w)
	if err != nil {
		t.Fatal(err)
	}
	gp, ok := grouped.Proc("A+B")
	if !ok {
		t.Fatal("chain with constants not grouped")
	}
	want := map[string]string{"A.scale": "1.5"}
	if !reflect.DeepEqual(gp.Constants, want) {
		t.Fatalf("group constants = %v, want %v", gp.Constants, want)
	}
	// And the grouped run works end to end with the constant on the
	// composed command line.
	g.Catalog().Register("gfn://x", 1)
	e, err := New(eng, grouped, Options{ServiceParallelism: true, DataParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"gfn://x"}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := res.Trace.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if !strings.Contains(jobs[0].Spec.Command, "-s 1.5") {
		t.Fatalf("constant missing from composed command: %q", jobs[0].Spec.Command)
	}
}
