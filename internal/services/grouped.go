package services

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/provenance"
)

// InternalRef points an input port of a group member at the output port of
// an earlier member: the data dependency resolved node-locally inside the
// grouped job, with no grid transfer and no catalog registration.
type InternalRef struct {
	Member int    // index of the producing member (must precede the consumer)
	Port   string // output name on that member
}

// GroupMember is one code in a grouped job: its wrapper plus the wiring of
// its inputs that are satisfied inside the group.
type GroupMember struct {
	W *Wrapper
	// Internal maps an input name of this member to the earlier member
	// output that feeds it. Inputs not listed are external: the grouped
	// service exposes them as "<memberName>.<inputName>".
	Internal map[string]InternalRef
}

// Grouped is a virtual service fusing a sequence of wrapped codes into a
// single grid job (the job-grouping optimization, Sec. 3.6 / Fig. 7
// bottom). Because the enactor has access to every member's executable
// descriptor, it can compose the command lines of the codes and submit one
// job invoking them in sequence: one submission overhead instead of k, and
// intermediate files never leave the worker node.
//
// The grouped service remains compatible with the service standards: it
// exposes the same invocation interface as any other service.
type Grouped struct {
	name    string
	g       Submitter // first member's target: the group submits as that tenant
	members []GroupMember
	invoked map[string]int // per index key, for deterministic output names
}

// NewGrouped builds a grouped service. Members run in slice order; every
// InternalRef must point to an earlier member and an output it declares.
// The exposed output ports are those of the last member.
func NewGrouped(name string, members []GroupMember) (*Grouped, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("services: group %s needs at least 2 members", name)
	}
	if members[0].W == nil {
		return nil, fmt.Errorf("services: group %s: member 0 has no wrapper", name)
	}
	sub := members[0].W.Submitter()
	for i, m := range members {
		if m.W == nil {
			return nil, fmt.Errorf("services: group %s: member %d has no wrapper", name, i)
		}
		// Handle identity, not just grid identity: tenant handles are
		// memoized, so this also rejects mixing tenants of one grid —
		// the group submits as a single tenant and mixed members would
		// silently be accounted to member 0's.
		if m.W.Submitter() != sub {
			return nil, fmt.Errorf("services: group %s: member %d targets a different grid or tenant", name, i)
		}
		for in, ref := range m.Internal {
			if _, ok := m.W.Descriptor().Input(in); !ok {
				return nil, fmt.Errorf("services: group %s: member %d has no input %q", name, i, in)
			}
			if ref.Member >= i {
				return nil, fmt.Errorf("services: group %s: input %q of member %d wired to non-preceding member %d",
					name, in, i, ref.Member)
			}
			found := false
			for _, out := range members[ref.Member].W.Descriptor().OutputNames() {
				if out == ref.Port {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("services: group %s: member %d has no output %q", name, ref.Member, ref.Port)
			}
		}
	}
	return &Grouped{name: name, g: sub, members: members, invoked: make(map[string]int)}, nil
}

// Name implements Service.
func (gs *Grouped) Name() string { return gs.name }

// Members returns the member wrappers in execution order.
func (gs *Grouped) Members() []GroupMember { return gs.members }

// ExternalInputs lists the exposed input port names, in member order:
// "<memberName>.<inputName>" for every input not wired internally.
func (gs *Grouped) ExternalInputs() []string {
	var out []string
	for _, m := range gs.members {
		for _, in := range m.W.Descriptor().InputNames() {
			if _, internal := m.Internal[in]; !internal {
				out = append(out, m.W.Name()+"."+in)
			}
		}
	}
	return out
}

// OutputNames lists the exposed output ports: the last member's outputs.
func (gs *Grouped) OutputNames() []string {
	return gs.members[len(gs.members)-1].W.Descriptor().OutputNames()
}

// Invoke implements Service: it composes one command line covering all
// member codes and submits a single grid job. External inputs are read
// from req.Inputs under their qualified names; intermediate results are
// node-local temporary files.
func (gs *Grouped) Invoke(req Request, done func(Response)) {
	key := provenance.Key(req.Index)
	seq := gs.invoked[key]
	gs.invoked[key]++
	last := len(gs.members) - 1

	var (
		commands  []string
		stageIns  []string
		decls     []grid.FileDecl
		runtime   time.Duration
		exposed   map[string]string
		perMember = make([]map[string]string, len(gs.members)) // outputs per member
	)
	for i, m := range gs.members {
		desc := m.W.Descriptor()
		inputs := make(map[string]string, len(desc.Executable.Inputs))
		for _, in := range desc.InputNames() {
			if ref, internal := m.Internal[in]; internal {
				inputs[in] = perMember[ref.Member][ref.Port]
				continue
			}
			qual := m.W.Name() + "." + in
			v, ok := req.Inputs[qual]
			if !ok {
				done(Response{Err: fmt.Errorf("services: group %s: input %q not bound", gs.name, qual)})
				return
			}
			inputs[in] = v
		}
		outputs := make(map[string]string, len(desc.Executable.Outputs))
		for _, out := range desc.OutputNames() {
			if i == last {
				// Final outputs are registered on the grid.
				outputs[out] = fmt.Sprintf("gfn://%s/%s.%s.%d", gs.name, out, key, seq)
				decls = append(decls, grid.FileDecl{Name: outputs[out], SizeMB: m.W.OutputSize(out)})
			} else {
				// Intermediates stay on the worker node: no transfer, no
				// registration — the point of grouping.
				outputs[out] = fmt.Sprintf("tmp/%s.%s.%d", out, key, seq)
			}
		}
		perMember[i] = outputs
		if i == last {
			exposed = outputs
		}

		bind := descriptor.Bindings{Inputs: inputs, Outputs: outputs}
		cmd, err := desc.CommandLine(bind)
		if err != nil {
			done(Response{Err: fmt.Errorf("services: group %s: %w", gs.name, err)})
			return
		}
		commands = append(commands, cmd)
		stage, err := desc.StageIns(bind)
		if err != nil {
			done(Response{Err: fmt.Errorf("services: group %s: %w", gs.name, err)})
			return
		}
		// Internal inputs are tmp/ paths, never GFNs, so stage contains
		// only genuinely external files.
		stageIns = append(stageIns, stage...)

		memberReq := Request{Index: req.Index, Inputs: inputs}
		runtime += m.W.Runtime()(memberReq)
	}

	spec := grid.JobSpec{
		Name:    fmt.Sprintf("%s[%s]", gs.name, key),
		Command: descriptor.Compose(commands...),
		Inputs:  dedup(stageIns),
		Outputs: decls,
		Runtime: runtime,
	}
	gs.g.Submit(spec, func(rec *grid.JobRecord) {
		resp := Response{Jobs: []*grid.JobRecord{rec}}
		if rec.Status != grid.StatusCompleted {
			resp.Err = fmt.Errorf("services: group %s: %w", gs.name, rec.Err)
		} else {
			resp.Outputs = exposed
		}
		done(resp)
	})
}

// dedup removes repeated stage-in names while preserving order: members of
// a group often share inputs (e.g. the reference image), which are
// transferred once.
func dedup(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] && !strings.HasPrefix(n, "tmp/") {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

var _ Service = (*Grouped)(nil)
