package services

import (
	"fmt"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/provenance"
)

// Wrapper is the paper's generic submission service (Sec. 3.6): a service
// that can wrap any executable code described by an XML descriptor. At
// invocation time it composes the actual command line from the descriptor
// and the bound inputs, chooses fresh GFNs for the outputs, submits one
// grid job, and reports the registered outputs.
type Wrapper struct {
	g    Submitter
	desc *descriptor.Description
	run  RuntimeModel
	// outSizes gives the size in MB of each produced file (by output name).
	outSizes map[string]float64
	// invoked counts invocations per index key, so output GFNs are unique
	// yet deterministic: re-running the same workflow under different
	// optimization settings produces identical output names, which is how
	// tests assert that optimizations change timing but never results.
	invoked map[string]int
}

// NewWrapper builds a generic wrapper around the descriptor. outSizes maps
// each declared output name to the size of the file the code produces. g
// is where jobs go: pass the *grid.Grid itself, or a *grid.Tenant handle
// to tag every submission with that tenant.
func NewWrapper(g Submitter, desc *descriptor.Description, run RuntimeModel, outSizes map[string]float64) (*Wrapper, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if run == nil {
		return nil, fmt.Errorf("services: wrapper %s: nil runtime model", desc.Executable.Name)
	}
	for _, out := range desc.OutputNames() {
		if _, ok := outSizes[out]; !ok {
			return nil, fmt.Errorf("services: wrapper %s: no size for output %q", desc.Executable.Name, out)
		}
	}
	return &Wrapper{g: g, desc: desc, run: run, outSizes: outSizes, invoked: make(map[string]int)}, nil
}

// Name implements Service; the service is named after the wrapped code.
func (w *Wrapper) Name() string { return w.desc.Executable.Name }

// Descriptor returns the wrapped executable's descriptor. The workflow
// enactor reads it to compose grouped jobs.
func (w *Wrapper) Descriptor() *descriptor.Description { return w.desc }

// Runtime returns the wrapper's runtime model.
func (w *Wrapper) Runtime() RuntimeModel { return w.run }

// OutputSize returns the declared size of the named output.
func (w *Wrapper) OutputSize(name string) float64 { return w.outSizes[name] }

// Catalog returns the replica catalog this wrapper's jobs stage from and
// register into.
func (w *Wrapper) Catalog() *grid.Catalog { return w.g.Catalog() }

// Submitter returns the submission target (a grid, a tenant handle on a
// shared grid, or a federation tenant). Grouped services submit through
// their first member's target, preserving tenancy.
func (w *Wrapper) Submitter() Submitter { return w.g }

// bind chooses fresh output GFNs and composes the bindings for one
// invocation.
func (w *Wrapper) bind(req Request) (descriptor.Bindings, map[string]string) {
	key := provenance.Key(req.Index)
	n := w.invoked[key]
	w.invoked[key]++
	outputs := make(map[string]string, len(w.desc.Executable.Outputs))
	for _, out := range w.desc.OutputNames() {
		outputs[out] = fmt.Sprintf("gfn://%s/%s.%s.%d", w.Name(), out, key, n)
	}
	return descriptor.Bindings{Inputs: req.Inputs, Outputs: outputs}, outputs
}

// Invoke implements Service: one invocation is one grid job.
func (w *Wrapper) Invoke(req Request, done func(Response)) {
	bind, outputs := w.bind(req)
	cmd, err := w.desc.CommandLine(bind)
	if err != nil {
		done(Response{Err: err})
		return
	}
	stage, err := w.desc.StageIns(bind)
	if err != nil {
		done(Response{Err: err})
		return
	}
	decls := make([]grid.FileDecl, 0, len(outputs))
	for name, gfn := range outputs {
		decls = append(decls, grid.FileDecl{Name: gfn, SizeMB: w.outSizes[name]})
	}
	spec := grid.JobSpec{
		Name:    fmt.Sprintf("%s[%s]", w.Name(), provenance.Key(req.Index)),
		Command: cmd,
		Inputs:  stage,
		Outputs: decls,
		Runtime: w.run(req),
	}
	w.g.Submit(spec, func(rec *grid.JobRecord) {
		resp := Response{Jobs: []*grid.JobRecord{rec}}
		if rec.Status != grid.StatusCompleted {
			resp.Err = fmt.Errorf("services: %s: %w", w.Name(), rec.Err)
		} else {
			resp.Outputs = outputs
		}
		done(resp)
	})
}

// ensure interface satisfaction
var (
	_ Service = (*Wrapper)(nil)
	_ Service = (*Local)(nil)
)
