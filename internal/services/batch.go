package services

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/provenance"
)

// InvokeBatch submits several invocations of the same wrapped code as a
// single grid job — the "grouping jobs of a single service" optimization
// the paper leaves as future work (Sec. 5.4): it trades data parallelism
// for a reduction of the per-job overhead, letting the enactor adapt the
// job granularity to the grid load.
//
// The batch job's command line is the composition of the per-invocation
// command lines; its compute time is their sum; shared input files are
// staged once. done receives one Response per request, in order; on
// failure every response carries the error (the grid retries transparently
// first, as for any job).
func (w *Wrapper) InvokeBatch(reqs []Request, done func([]Response)) {
	if len(reqs) == 0 {
		panic("services: InvokeBatch with no requests")
	}
	if len(reqs) == 1 {
		w.Invoke(reqs[0], func(r Response) { done([]Response{r}) })
		return
	}
	var (
		commands   []string
		stageIns   []string
		decls      []grid.FileDecl
		runtime    time.Duration
		outputSets = make([]map[string]string, len(reqs))
	)
	for i, req := range reqs {
		bind, outputs := w.bind(req)
		cmd, err := w.desc.CommandLine(bind)
		if err != nil {
			done(failAll(len(reqs), err))
			return
		}
		stage, err := w.desc.StageIns(bind)
		if err != nil {
			done(failAll(len(reqs), err))
			return
		}
		commands = append(commands, cmd)
		stageIns = append(stageIns, stage...)
		for name, gfn := range outputs {
			decls = append(decls, grid.FileDecl{Name: gfn, SizeMB: w.outSizes[name]})
		}
		outputSets[i] = outputs
		runtime += w.run(req)
	}
	spec := grid.JobSpec{
		Name:    fmt.Sprintf("%s[batch:%d:%s]", w.Name(), len(reqs), provenance.Key(reqs[0].Index)),
		Command: composeAll(commands),
		Inputs:  dedup(stageIns),
		Outputs: decls,
		Runtime: runtime,
	}
	w.g.Submit(spec, func(rec *grid.JobRecord) {
		resps := make([]Response, len(reqs))
		for i := range resps {
			resps[i].Jobs = []*grid.JobRecord{rec}
			if rec.Status != grid.StatusCompleted {
				resps[i].Err = fmt.Errorf("services: %s batch: %w", w.Name(), rec.Err)
			} else {
				resps[i].Outputs = outputSets[i]
			}
		}
		done(resps)
	})
}

func failAll(n int, err error) []Response {
	resps := make([]Response, n)
	for i := range resps {
		resps[i].Err = err
	}
	return resps
}

func composeAll(commands []string) string {
	out := commands[0]
	for _, c := range commands[1:] {
		out += " && " + c
	}
	return out
}
