package services

import (
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

func TestInvokeBatchComposesOneJob(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 8)
	g.Catalog().Register("gfn://r", 7.8)
	g.Catalog().Register("gfn://f", 7.8)
	w := crestWrapper(t, g, 30*time.Second)

	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = Request{
			Index: []int{i},
			Inputs: map[string]string{
				"floating_image": "gfn://f", "reference_image": "gfn://r", "scale": "1",
			},
		}
	}
	var resps []Response
	w.InvokeBatch(reqs, func(rs []Response) { resps = rs })
	eng.Run()

	if len(g.Records()) != 1 {
		t.Fatalf("batch produced %d jobs, want 1", len(g.Records()))
	}
	job := g.Records()[0]
	if got := strings.Count(job.Spec.Command, "CrestLines.pl "); got != 3 {
		t.Fatalf("composed command holds %d invocations, want 3: %q", got, job.Spec.Command)
	}
	if job.Spec.Runtime != 90*time.Second {
		t.Fatalf("batch runtime = %v, want 90s (sum)", job.Spec.Runtime)
	}
	// Shared inputs staged once.
	if len(job.Spec.Inputs) != 2 {
		t.Fatalf("staged = %v, want the two shared images once", job.Spec.Inputs)
	}
	// 2 outputs per invocation, all registered.
	if len(job.Spec.Outputs) != 6 {
		t.Fatalf("declared outputs = %d, want 6", len(job.Spec.Outputs))
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("resp %d: %v", i, r.Err)
		}
		if len(r.Outputs) != 2 {
			t.Fatalf("resp %d outputs = %v", i, r.Outputs)
		}
	}
}

func TestInvokeBatchGridFailure(t *testing.T) {
	cfg := grid.IdealConfig(4)
	cfg.Failures = grid.FailureConfig{Probability: 1, DetectDelay: time.Second, MaxRetries: 1}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg)
	g.Catalog().Register("gfn://r", 1)
	g.Catalog().Register("gfn://f", 1)
	w := crestWrapper(t, g, time.Second)
	var resps []Response
	w.InvokeBatch([]Request{
		{Index: []int{0}, Inputs: map[string]string{"floating_image": "gfn://f", "reference_image": "gfn://r", "scale": "1"}},
		{Index: []int{1}, Inputs: map[string]string{"floating_image": "gfn://f", "reference_image": "gfn://r", "scale": "1"}},
	}, func(rs []Response) { resps = rs })
	eng.Run()
	if len(resps) != 2 {
		t.Fatalf("responses = %d", len(resps))
	}
	for i, r := range resps {
		if r.Err == nil {
			t.Fatalf("resp %d: batch grid failure not propagated", i)
		}
	}
}

func TestGroupedGridFailure(t *testing.T) {
	cfg := grid.IdealConfig(4)
	cfg.Failures = grid.FailureConfig{Probability: 1, DetectDelay: time.Second, MaxRetries: 1}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg)
	g.Catalog().Register("gfn://ref0", 1)
	g.Catalog().Register("gfn://flo0", 1)
	cl := crestWrapper(t, g, time.Second)
	cm := matchWrapper(t, g, time.Second)
	grp, err := NewGrouped("G", []GroupMember{
		{W: cl},
		{W: cm, Internal: map[string]InternalRef{
			"crest_reference": {Member: 0, Port: "crest_reference"},
			"crest_floating":  {Member: 0, Port: "crest_floating"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	grp.Invoke(Request{Inputs: map[string]string{
		"CrestLines.pl.floating_image":  "gfn://flo0",
		"CrestLines.pl.reference_image": "gfn://ref0",
		"CrestLines.pl.scale":           "1",
		"CrestMatch.reference_image":    "gfn://ref0",
	}}, func(r Response) { resp = r })
	eng.Run()
	if resp.Err == nil {
		t.Fatal("grouped grid failure not propagated")
	}
}

func TestWrapperAccessors(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	w := crestWrapper(t, g, 7*time.Second)
	if w.Catalog() != g.Catalog() {
		t.Error("Catalog() accessor broken")
	}
	if w.Submitter() != Submitter(g) {
		t.Error("Submitter() accessor broken")
	}
	if w.Descriptor().Executable.Name != "CrestLines.pl" {
		t.Error("Descriptor() accessor broken")
	}
	if w.Runtime()(Request{}) != 7*time.Second {
		t.Error("Runtime() accessor broken")
	}
	if w.OutputSize("crest_reference") != 1.0 {
		t.Error("OutputSize() accessor broken")
	}
}

func TestGroupedDifferentGridsRejected(t *testing.T) {
	eng := sim.NewEngine()
	g1 := testGrid(eng, 1)
	g2 := testGrid(eng, 1)
	a := crestWrapper(t, g1, time.Second)
	b := matchWrapper(t, g2, time.Second)
	if _, err := NewGrouped("x", []GroupMember{{W: a}, {W: b}}); err == nil {
		t.Fatal("cross-grid group accepted")
	}
}

func TestGroupedNilMemberRejected(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	a := crestWrapper(t, g, time.Second)
	if _, err := NewGrouped("x", []GroupMember{{W: a}, {W: nil}}); err == nil {
		t.Fatal("nil member accepted")
	}
}
