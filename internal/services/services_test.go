package services

import (
	"strings"
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/sim"
)

// testGrid returns a quiet deterministic grid: fixed latencies, no
// background load, no failures.
func testGrid(eng *sim.Engine, nodes int) *grid.Grid {
	cfg := grid.IdealConfig(nodes)
	cfg.Overheads = grid.OverheadConfig{
		SubmitMean:   2 * time.Second,
		BrokerMean:   3 * time.Second,
		DispatchMean: 5 * time.Second,
	}
	return grid.New(eng, cfg)
}

const crestLinesXML = `<description>
<executable name="CrestLines.pl">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="CrestLines.pl"/>
<input name="floating_image" option="-im1"><access type="GFN"/></input>
<input name="reference_image" option="-im2"><access type="GFN"/></input>
<input name="scale" option="-s"/>
<output name="crest_reference" option="-c1"><access type="GFN"/></output>
<output name="crest_floating" option="-c2"><access type="GFN"/></output>
</executable>
</description>`

const crestMatchXML = `<description>
<executable name="CrestMatch">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="cmatch"/>
<input name="crest_reference" option="-c1"><access type="GFN"/></input>
<input name="crest_floating" option="-c2"><access type="GFN"/></input>
<input name="reference_image" option="-im2"><access type="GFN"/></input>
<output name="transfo" option="-o"><access type="GFN"/></output>
</executable>
</description>`

func mustParse(t *testing.T, xml string) *descriptor.Description {
	t.Helper()
	d, err := descriptor.Parse([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func crestWrapper(t *testing.T, g *grid.Grid, runtime time.Duration) *Wrapper {
	t.Helper()
	w, err := NewWrapper(g, mustParse(t, crestLinesXML), ConstantRuntime(runtime),
		map[string]float64{"crest_reference": 1.0, "crest_floating": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func matchWrapper(t *testing.T, g *grid.Grid, runtime time.Duration) *Wrapper {
	t.Helper()
	w, err := NewWrapper(g, mustParse(t, crestMatchXML), ConstantRuntime(runtime),
		map[string]float64{"transfo": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLocalInvoke(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewLocal(eng, "echo", 2, ConstantRuntime(10*time.Second), nil)
	var resp Response
	var at sim.Time
	svc.Invoke(Request{Inputs: map[string]string{"in": "v1"}}, func(r Response) {
		resp = r
		at = eng.Now()
	})
	eng.Run()
	if at != sim.Time(10*time.Second) {
		t.Fatalf("completed at %v, want 10s", at)
	}
	if resp.Outputs["in"] != "v1" {
		t.Fatalf("echo outputs = %v", resp.Outputs)
	}
	if resp.Err != nil || resp.Jobs != nil {
		t.Fatalf("local response carries err/jobs: %+v", resp)
	}
}

func TestLocalSaturation(t *testing.T) {
	// A single-host service with capacity 2 serializes beyond 2 concurrent
	// calls — the paper's motivation for submitting to a grid instead.
	eng := sim.NewEngine()
	svc := NewLocal(eng, "svc", 2, ConstantRuntime(10*time.Second), nil)
	finished := 0
	for i := 0; i < 6; i++ {
		svc.Invoke(Request{}, func(Response) { finished++ })
	}
	if svc.Busy() != 2 || svc.Waiting() != 4 {
		t.Fatalf("busy=%d waiting=%d, want 2/4", svc.Busy(), svc.Waiting())
	}
	eng.Run()
	if finished != 6 {
		t.Fatalf("finished = %d", finished)
	}
	if eng.Now() != sim.Time(30*time.Second) {
		t.Fatalf("6 calls on capacity 2 took %v, want 30s", eng.Now())
	}
}

func TestLocalCustomFunction(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewLocal(eng, "upper", 1, ConstantRuntime(time.Second), func(req Request) map[string]string {
		return map[string]string{"out": strings.ToUpper(req.Inputs["in"])}
	})
	var resp Response
	svc.Invoke(Request{Inputs: map[string]string{"in": "abc"}}, func(r Response) { resp = r })
	eng.Run()
	if resp.Outputs["out"] != "ABC" {
		t.Fatalf("outputs = %v", resp.Outputs)
	}
}

func TestWrapperInvoke(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 4)
	g.Catalog().Register("gfn://ref0", 7.8)
	g.Catalog().Register("gfn://flo0", 7.8)
	w := crestWrapper(t, g, time.Minute)

	var resp Response
	w.Invoke(Request{
		Index: []int{0},
		Inputs: map[string]string{
			"floating_image": "gfn://flo0", "reference_image": "gfn://ref0", "scale": "1.5",
		},
	}, func(r Response) { resp = r })
	eng.Run()

	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// Outputs are fresh GFNs registered in the catalog.
	for _, port := range []string{"crest_reference", "crest_floating"} {
		gfn := resp.Outputs[port]
		if !strings.HasPrefix(gfn, "gfn://CrestLines.pl/") {
			t.Errorf("output %s = %q, want wrapper-minted GFN", port, gfn)
		}
		if !g.Catalog().Has(gfn) {
			t.Errorf("output %s not registered in catalog", port)
		}
	}
	if len(resp.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(resp.Jobs))
	}
	job := resp.Jobs[0]
	// The composed command line contains the dynamic bindings (Fig. 8).
	for _, frag := range []string{"CrestLines.pl", "-im1 gfn://flo0", "-im2 gfn://ref0", "-s 1.5", "-c1 ", "-c2 "} {
		if !strings.Contains(job.Spec.Command, frag) {
			t.Errorf("command %q missing %q", job.Spec.Command, frag)
		}
	}
	// Only the two GFN files are staged; the parameter is not.
	if len(job.Spec.Inputs) != 2 {
		t.Errorf("staged inputs = %v", job.Spec.Inputs)
	}
}

func TestWrapperUniqueOutputNames(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 4)
	g.Catalog().Register("r", 1)
	g.Catalog().Register("f", 1)
	w := crestWrapper(t, g, time.Second)
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		i := i
		w.Invoke(Request{
			Index:  []int{i},
			Inputs: map[string]string{"floating_image": "f", "reference_image": "r", "scale": "1"},
		}, func(r Response) {
			for _, v := range r.Outputs {
				if seen[v] {
					t.Errorf("duplicate output GFN %q across invocations", v)
				}
				seen[v] = true
			}
		})
	}
	eng.Run()
	if len(seen) != 6 {
		t.Fatalf("distinct outputs = %d, want 6", len(seen))
	}
}

func TestWrapperMissingInputFileFails(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 4)
	w := crestWrapper(t, g, time.Second)
	var resp Response
	w.Invoke(Request{
		Inputs: map[string]string{"floating_image": "gfn://nope", "reference_image": "gfn://nope2", "scale": "1"},
	}, func(r Response) { resp = r })
	eng.Run()
	if resp.Err == nil {
		t.Fatal("invocation with unregistered inputs succeeded")
	}
}

func TestWrapperUnboundInputFails(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 4)
	w := crestWrapper(t, g, time.Second)
	var resp Response
	w.Invoke(Request{Inputs: map[string]string{"scale": "1"}}, func(r Response) { resp = r })
	eng.Run()
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "not bound") {
		t.Fatalf("unbound input not reported: %v", resp.Err)
	}
}

func TestNewWrapperValidation(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	d := mustParse(t, crestLinesXML)
	if _, err := NewWrapper(g, d, nil, map[string]float64{"crest_reference": 1, "crest_floating": 1}); err == nil {
		t.Error("nil runtime model accepted")
	}
	if _, err := NewWrapper(g, d, ConstantRuntime(time.Second), map[string]float64{"crest_reference": 1}); err == nil {
		t.Error("missing output size accepted")
	}
}

// buildGroup fuses crestLines+crestMatch the way the paper groups them.
func buildGroup(t *testing.T, g *grid.Grid) *Grouped {
	t.Helper()
	cl := crestWrapper(t, g, time.Minute)
	cm := matchWrapper(t, g, 30*time.Second)
	grp, err := NewGrouped("CrestLines.pl+CrestMatch", []GroupMember{
		{W: cl},
		{W: cm, Internal: map[string]InternalRef{
			"crest_reference": {Member: 0, Port: "crest_reference"},
			"crest_floating":  {Member: 0, Port: "crest_floating"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return grp
}

func TestGroupedSingleJob(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 4)
	g.Catalog().Register("gfn://ref0", 7.8)
	g.Catalog().Register("gfn://flo0", 7.8)
	grp := buildGroup(t, g)

	var resp Response
	grp.Invoke(Request{
		Index: []int{0},
		Inputs: map[string]string{
			"CrestLines.pl.floating_image":  "gfn://flo0",
			"CrestLines.pl.reference_image": "gfn://ref0",
			"CrestLines.pl.scale":           "1.5",
			"CrestMatch.reference_image":    "gfn://ref0",
		},
	}, func(r Response) { resp = r })
	eng.Run()

	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(resp.Jobs) != 1 {
		t.Fatalf("group submitted %d jobs, want exactly 1", len(resp.Jobs))
	}
	job := resp.Jobs[0]
	// One composed command: code1 && code2 with the intermediate wired
	// through a node-local tmp path.
	if !strings.Contains(job.Spec.Command, " && ") {
		t.Errorf("command not composed: %q", job.Spec.Command)
	}
	if !strings.Contains(job.Spec.Command, "tmp/") {
		t.Errorf("intermediates not node-local: %q", job.Spec.Command)
	}
	// Runtime is the sum of member runtimes.
	if job.Spec.Runtime != 90*time.Second {
		t.Errorf("runtime = %v, want 90s", job.Spec.Runtime)
	}
	// Shared external input staged once.
	count := 0
	for _, in := range job.Spec.Inputs {
		if in == "gfn://ref0" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("gfn://ref0 staged %d times, want 1", count)
	}
	// Only the last member's outputs are registered.
	if len(job.Spec.Outputs) != 1 || !strings.Contains(job.Spec.Outputs[0].Name, "transfo") {
		t.Errorf("registered outputs = %v, want only the final transfo", job.Spec.Outputs)
	}
	if resp.Outputs["transfo"] == "" {
		t.Error("group response missing final output")
	}
	// Intermediates are NOT in the catalog.
	for _, name := range g.Catalog().Names() {
		if strings.Contains(name, "crest_reference") {
			t.Errorf("intermediate %q leaked into the catalog", name)
		}
	}
}

func TestGroupedVsSeparateOverhead(t *testing.T) {
	// The whole point of grouping: one grid overhead instead of two.
	run := func(grouped bool) sim.Time {
		eng := sim.NewEngine()
		g := testGrid(eng, 4)
		g.Catalog().Register("gfn://ref0", 7.8)
		g.Catalog().Register("gfn://flo0", 7.8)
		var end sim.Time
		if grouped {
			grp := buildGroup(t, g)
			grp.Invoke(Request{Inputs: map[string]string{
				"CrestLines.pl.floating_image":  "gfn://flo0",
				"CrestLines.pl.reference_image": "gfn://ref0",
				"CrestLines.pl.scale":           "1.5",
				"CrestMatch.reference_image":    "gfn://ref0",
			}}, func(Response) { end = eng.Now() })
		} else {
			cl := crestWrapper(t, g, time.Minute)
			cm := matchWrapper(t, g, 30*time.Second)
			cl.Invoke(Request{Inputs: map[string]string{
				"floating_image": "gfn://flo0", "reference_image": "gfn://ref0", "scale": "1.5",
			}}, func(r1 Response) {
				cm.Invoke(Request{Inputs: map[string]string{
					"crest_reference": r1.Outputs["crest_reference"],
					"crest_floating":  r1.Outputs["crest_floating"],
					"reference_image": "gfn://ref0",
				}}, func(Response) { end = eng.Now() })
			})
		}
		eng.Run()
		return end
	}
	grouped, separate := run(true), run(false)
	if grouped >= separate {
		t.Fatalf("grouping did not reduce makespan: grouped=%v separate=%v", grouped, separate)
	}
	// The saving must be about one full overhead chain (submit+broker+dispatch = 10s here).
	if saving := separate - grouped; saving < sim.Time(9*time.Second) {
		t.Errorf("saving = %v, want ≥ ~10s (one overhead chain)", saving)
	}
}

func TestGroupedExternalInputs(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	grp := buildGroup(t, g)
	got := grp.ExternalInputs()
	want := []string{
		"CrestLines.pl.floating_image",
		"CrestLines.pl.reference_image",
		"CrestLines.pl.scale",
		"CrestMatch.reference_image",
	}
	if len(got) != len(want) {
		t.Fatalf("ExternalInputs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExternalInputs = %v, want %v", got, want)
		}
	}
	outs := grp.OutputNames()
	if len(outs) != 1 || outs[0] != "transfo" {
		t.Fatalf("OutputNames = %v", outs)
	}
}

func TestGroupedUnboundExternal(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	grp := buildGroup(t, g)
	var resp Response
	grp.Invoke(Request{Inputs: map[string]string{}}, func(r Response) { resp = r })
	eng.Run()
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "not bound") {
		t.Fatalf("unbound external input not reported: %v", resp.Err)
	}
}

func TestNewGroupedValidation(t *testing.T) {
	eng := sim.NewEngine()
	g := testGrid(eng, 1)
	cl := crestWrapper(t, g, time.Second)
	cm := matchWrapper(t, g, time.Second)

	if _, err := NewGrouped("solo", []GroupMember{{W: cl}}); err == nil {
		t.Error("single-member group accepted")
	}
	if _, err := NewGrouped("badport", []GroupMember{
		{W: cl},
		{W: cm, Internal: map[string]InternalRef{"crest_reference": {Member: 0, Port: "nope"}}},
	}); err == nil {
		t.Error("internal ref to nonexistent output accepted")
	}
	if _, err := NewGrouped("badmember", []GroupMember{
		{W: cl, Internal: map[string]InternalRef{"scale": {Member: 0, Port: "crest_reference"}}},
		{W: cm},
	}); err == nil {
		t.Error("self/forward internal ref accepted")
	}
	if _, err := NewGrouped("badinput", []GroupMember{
		{W: cl},
		{W: cm, Internal: map[string]InternalRef{"nosuch": {Member: 0, Port: "crest_reference"}}},
	}); err == nil {
		t.Error("internal ref on nonexistent input accepted")
	}
}

func TestConstantRuntime(t *testing.T) {
	m := ConstantRuntime(42 * time.Second)
	if m(Request{}) != 42*time.Second || m(Request{Index: []int{9}}) != 42*time.Second {
		t.Fatal("ConstantRuntime not constant")
	}
}
