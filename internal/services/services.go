// Package services implements the application-service abstraction of the
// paper's service-based approach (Sec. 2): black boxes exposing a standard
// invocation interface, hiding both the code invocation and the execution
// platform.
//
// Invocation is asynchronous, as required for any parallelism at the
// enactor level (Sec. 3.1): Invoke returns immediately and the completion
// callback fires later in virtual time, mirroring the enactor-side threads
// the paper spawns around synchronous web-service calls.
//
// Three implementations are provided:
//
//   - Local: code running on a single host with a bounded number of
//     concurrent executions — the plain web-service deployment whose
//     saturation motivates grid submission (Sec. 2).
//   - Wrapper: the paper's generic submission service (Sec. 3.6). Driven by
//     an XML executable descriptor, it composes the command line at
//     invocation time, stages GFN inputs, submits a grid job, and registers
//     outputs.
//   - Grouped: a virtual service fusing a sequence of Wrappers into a
//     single grid job (the job-grouping optimization).
package services

import (
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// Request is one service invocation: the value bound to each input port.
// For synchronization services, Lists carries the complete per-port item
// lists instead (Sec. 2.3).
type Request struct {
	// Index is the iteration-space index of the invocation (for runtime
	// models and traces).
	Index []int
	// Inputs binds one value per input port. The map is owned by the
	// invoker, which may recycle it once the completion callback has
	// returned: services must consume the bindings during invocation and
	// must not retain the map afterwards.
	Inputs map[string]string
	// Lists binds the full value list per input port; non-nil only for
	// synchronization invocations.
	Lists map[string][]string
}

// Response is the outcome of an invocation. Outputs may omit ports: a
// service with conditional outputs (the Fig. 2 optimization loop) emits on
// a subset of its ports each invocation.
type Response struct {
	Outputs map[string]string
	Err     error
	// Jobs are the grid job records behind this invocation (nil for local
	// services); used by traces and overhead accounting.
	Jobs []*grid.JobRecord
}

// Service is an application component invocable through the standard
// interface. Implementations must call done exactly once, in virtual time.
type Service interface {
	Name() string
	Invoke(req Request, done func(Response))
}

// Submitter abstracts where wrapper-backed services send their grid jobs:
// the whole grid (the single-workflow case — *grid.Grid satisfies the
// interface directly), one tenant of a shared grid (*grid.Tenant, used by
// multi-tenant campaigns), or a tenant of a multi-grid federation
// (*federation.Tenant), whose broker policy picks a target grid per job.
// Tenant-shaped submitters tag submissions for per-tenant accounting and
// route them through the fair-share gate at each UI.
//
// Submitter identity is tenancy identity: tenant handles are memoized, so
// comparing Submitters (as Grouped does) detects members that would submit
// under different tenants or infrastructures.
type Submitter interface {
	// Submit enters a job, invoking done once at its terminal state. The
	// returned record is the first attempt's; brokers that re-submit
	// elsewhere after a failure report the final attempt's record to done,
	// so terminal state must be read from the callback's record.
	Submit(spec grid.JobSpec, done func(*grid.JobRecord)) *grid.JobRecord
	// Catalog returns the replica catalog jobs stage from and register
	// into — the only piece of the infrastructure the wrapper composition
	// logic needs (a federation has many grids but one catalog).
	Catalog() *grid.Catalog
}

// RuntimeModel gives the compute time of a code for one invocation. Models
// may depend on the request (e.g. per-item synthetic variability).
type RuntimeModel func(req Request) time.Duration

// ConstantRuntime returns a model that always answers d.
func ConstantRuntime(d time.Duration) RuntimeModel {
	return func(Request) time.Duration { return d }
}

// Local is a service executing on a single host with bounded concurrency.
type Local struct {
	name string
	eng  *sim.Engine
	host *sim.Resource
	run  RuntimeModel
	fn   func(Request) map[string]string
}

// NewLocal builds a single-host service. capacity bounds concurrent
// executions (a production web service container has a finite worker
// pool). fn computes the outputs; if nil, the service echoes each input
// port to the output port of the same name.
func NewLocal(eng *sim.Engine, name string, capacity int, run RuntimeModel, fn func(Request) map[string]string) *Local {
	if run == nil {
		panic("services: NewLocal with nil runtime model")
	}
	return &Local{
		name: name,
		eng:  eng,
		host: sim.NewResource(eng, capacity),
		run:  run,
		fn:   fn,
	}
}

// Name implements Service.
func (l *Local) Name() string { return l.name }

// Invoke implements Service: the call queues for a host slot, computes for
// the model's duration, and completes.
func (l *Local) Invoke(req Request, done func(Response)) {
	l.host.Acquire(func() {
		l.eng.Schedule(l.run(req), func() {
			l.host.Release()
			outputs := map[string]string{}
			if l.fn != nil {
				outputs = l.fn(req)
			} else {
				for p, v := range req.Inputs {
					outputs[p] = v
				}
			}
			done(Response{Outputs: outputs})
		})
	})
}

// Busy reports the number of in-flight executions on the host.
func (l *Local) Busy() int { return l.host.Busy() }

// Waiting reports calls queued for a host slot.
func (l *Local) Waiting() int { return l.host.Waiting() }
