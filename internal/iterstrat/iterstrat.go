// Package iterstrat implements iteration strategies: the composition rules
// that pair data arriving on the input ports of a service (paper Sec. 2.2,
// Fig. 3).
//
// Two base strategies are provided, as in the paper and in Taverna:
//
//   - Dot product: pairs items with the same index, producing min(n,m)
//     invocations — "a sequence of pairs".
//   - Cross product: pairs every item of one input with every item of the
//     other, producing n×m invocations.
//
// Strategies compose into trees: cross(dot(a,b), c) is legal and gives the
// data-interaction patterns that make the task-based representation
// combinatorial (Sec. 2.2).
//
// Matching is incremental: items are offered one at a time, in any order
// (data and service parallelism complete items out of order), and each
// offer returns the invocation tuples that just became complete. Matching
// is driven by provenance index vectors, which is what keeps dot products
// causally correct under reordering.
package iterstrat

import (
	"fmt"
	"strings"

	"repro/internal/provenance"
)

// Tuple is one complete invocation input set: the matched item for every
// port below the strategy node, plus the tuple's index vector.
type Tuple struct {
	Index []int
	Items map[string]*provenance.Item
}

// Strategy is a node of an iteration-strategy tree.
type Strategy interface {
	// Ports returns all port names under this node, left to right.
	Ports() []string
	// Offer presents an item arriving on port and returns the tuples that
	// became complete at this node, in a deterministic order.
	Offer(port string, it *provenance.Item) []Tuple
	// Count returns how many tuples this node will emit in total, given
	// the number of items each port will receive.
	Count(portCounts map[string]int) int
	// String renders the tree, e.g. "cross(dot(a,b),c)".
	String() string
	// Reset discards buffered state so the strategy can be reused.
	Reset()
}

// Port returns a leaf strategy: items on the named port pass through
// unchanged, keyed by their own index.
func Port(name string) Strategy { return &leaf{name: name} }

// Dot returns a dot-product node over the children. It panics if fewer
// than one child is given.
func Dot(children ...Strategy) Strategy {
	if len(children) == 0 {
		panic("iterstrat: Dot with no children")
	}
	return &dot{children: children, pending: make(map[string][]*Tuple)}
}

// Cross returns a cross-product node over the children. It panics if fewer
// than one child is given.
func Cross(children ...Strategy) Strategy {
	if len(children) == 0 {
		panic("iterstrat: Cross with no children")
	}
	return &cross{children: children, seen: make([][]Tuple, len(children))}
}

// SinglePort reports whether s is a bare single-port leaf (the default
// strategy of one-input services) and returns its port name. Leaves are
// stateless pass-throughs — an item on the port becomes one tuple keyed by
// the item's own index — which lets an enactor bypass the general Offer
// machinery on this, the most common, shape.
func SinglePort(s Strategy) (string, bool) {
	if l, ok := s.(*leaf); ok {
		return l.name, true
	}
	return "", false
}

// Validate checks that every port name under s is unique, returning an
// error naming the first duplicate.
func Validate(s Strategy) error {
	seen := make(map[string]bool)
	for _, p := range s.Ports() {
		if seen[p] {
			return fmt.Errorf("iterstrat: port %q appears more than once in %s", p, s)
		}
		seen[p] = true
	}
	return nil
}

// leaf

type leaf struct {
	name string
}

func (l *leaf) Ports() []string { return []string{l.name} }

func (l *leaf) Offer(port string, it *provenance.Item) []Tuple {
	if port != l.name {
		return nil
	}
	return []Tuple{{
		Index: it.Index,
		Items: map[string]*provenance.Item{l.name: it},
	}}
}

func (l *leaf) Count(portCounts map[string]int) int { return portCounts[l.name] }
func (l *leaf) String() string                      { return l.name }
func (l *leaf) Reset()                              {}

// dot

type dot struct {
	children []Strategy
	// pending[key] holds, per child, the tuple with that index key (nil if
	// the child has not produced it yet).
	pending map[string][]*Tuple
}

func (d *dot) Ports() []string {
	var out []string
	for _, c := range d.children {
		out = append(out, c.Ports()...)
	}
	return out
}

func (d *dot) owner(port string) int {
	for i, c := range d.children {
		for _, p := range c.Ports() {
			if p == port {
				return i
			}
		}
	}
	return -1
}

func (d *dot) Offer(port string, it *provenance.Item) []Tuple {
	ci := d.owner(port)
	if ci < 0 {
		return nil
	}
	var out []Tuple
	for _, t := range d.children[ci].Offer(port, it) {
		t := t
		key := provenance.Key(t.Index)
		row := d.pending[key]
		if row == nil {
			row = make([]*Tuple, len(d.children))
			d.pending[key] = row
		}
		row[ci] = &t
		complete := true
		for _, cell := range row {
			if cell == nil {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, mergeAligned(t.Index, row))
			delete(d.pending, key)
		}
	}
	return out
}

func mergeAligned(index []int, row []*Tuple) Tuple {
	merged := Tuple{Index: index, Items: make(map[string]*provenance.Item)}
	for _, cell := range row {
		for p, it := range cell.Items {
			merged.Items[p] = it
		}
	}
	return merged
}

func (d *dot) Count(portCounts map[string]int) int {
	min := -1
	for _, c := range d.children {
		n := c.Count(portCounts)
		if min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

func (d *dot) String() string { return renderTree("dot", d.children) }

func (d *dot) Reset() {
	d.pending = make(map[string][]*Tuple)
	for _, c := range d.children {
		c.Reset()
	}
}

// cross

type cross struct {
	children []Strategy
	seen     [][]Tuple // per child, all tuples emitted so far
}

func (c *cross) Ports() []string {
	var out []string
	for _, ch := range c.children {
		out = append(out, ch.Ports()...)
	}
	return out
}

func (c *cross) owner(port string) int {
	for i, ch := range c.children {
		for _, p := range ch.Ports() {
			if p == port {
				return i
			}
		}
	}
	return -1
}

func (c *cross) Offer(port string, it *provenance.Item) []Tuple {
	ci := c.owner(port)
	if ci < 0 {
		return nil
	}
	var out []Tuple
	for _, t := range c.children[ci].Offer(port, it) {
		c.seen[ci] = append(c.seen[ci], t)
		out = append(out, c.combinations(ci, t)...)
	}
	return out
}

// combinations pairs the new tuple from child ci with every already-seen
// combination of the other children, emitting index vectors concatenated
// in child order.
func (c *cross) combinations(ci int, newT Tuple) []Tuple {
	partial := make([]*Tuple, len(c.children))
	partial[ci] = &newT
	var out []Tuple
	var rec func(child int)
	rec = func(child int) {
		if child == len(c.children) {
			out = append(out, mergeCross(partial))
			return
		}
		if child == ci {
			rec(child + 1)
			return
		}
		for i := range c.seen[child] {
			partial[child] = &c.seen[child][i]
			rec(child + 1)
		}
		partial[child] = nil
	}
	rec(0)
	return out
}

func mergeCross(parts []*Tuple) Tuple {
	merged := Tuple{Items: make(map[string]*provenance.Item)}
	for _, p := range parts {
		merged.Index = append(merged.Index, p.Index...)
		for port, it := range p.Items {
			merged.Items[port] = it
		}
	}
	return merged
}

func (c *cross) Count(portCounts map[string]int) int {
	prod := 1
	for _, ch := range c.children {
		prod *= ch.Count(portCounts)
	}
	return prod
}

func (c *cross) String() string { return renderTree("cross", c.children) }

func (c *cross) Reset() {
	c.seen = make([][]Tuple, len(c.children))
	for _, ch := range c.children {
		ch.Reset()
	}
}

func renderTree(op string, children []Strategy) string {
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	b.WriteByte(')')
	return b.String()
}
