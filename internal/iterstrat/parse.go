package iterstrat

import (
	"fmt"
	"strings"
)

// Parse reads the compact strategy notation produced by Strategy.String:
//
//	port
//	dot(a,b,...)
//	cross(dot(a,b),c)
//
// Port names may contain any characters except '(', ')', ',' and
// whitespace. Parse(s).String() == s for canonical inputs.
func Parse(s string) (Strategy, error) {
	p := &parser{input: s}
	strat, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("iterstrat: trailing input at offset %d in %q", p.pos, s)
	}
	if err := Validate(strat); err != nil {
		return nil, err
	}
	return strat, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) parseNode() (Strategy, error) {
	p.skipSpace()
	name := p.readName()
	if name == "" {
		return nil, fmt.Errorf("iterstrat: expected a name at offset %d in %q", p.pos, p.input)
	}
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return Port(name), nil
	}
	if name != "dot" && name != "cross" {
		return nil, fmt.Errorf("iterstrat: unknown operator %q in %q", name, p.input)
	}
	p.pos++ // consume '('
	var children []Strategy
	for {
		child, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		p.skipSpace()
		if p.pos >= len(p.input) {
			return nil, fmt.Errorf("iterstrat: unterminated %s(...) in %q", name, p.input)
		}
		switch p.input[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			if name == "dot" {
				return Dot(children...), nil
			}
			return Cross(children...), nil
		default:
			return nil, fmt.Errorf("iterstrat: unexpected %q at offset %d in %q",
				p.input[p.pos], p.pos, p.input)
		}
	}
}

func (p *parser) readName() string {
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("(),	 \n", rune(p.input[p.pos])) {
		p.pos++
	}
	return p.input[start:p.pos]
}
