package iterstrat

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"dot(a,b)",
		"cross(a,b)",
		"cross(dot(a,b),c)",
		"dot(cross(a,b),cross(c,d))",
		"dot(a,b,c)",
		"cross(a,b,c)",
		"cross(dot(x1,y1),dot(x2,y2),z)",
	}
	for _, c := range cases {
		s, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		if got := s.String(); got != c {
			t.Errorf("Parse(%q).String() = %q", c, got)
		}
	}
}

func TestParseWhitespace(t *testing.T) {
	s, err := Parse(" cross( dot(a, b),\n c )")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "cross(dot(a,b),c)" {
		t.Fatalf("got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"dot(",
		"dot()",
		"dot(a,)",
		"dot(a,b))",
		"dot(a b)",
		"union(a,b)",
		"dot(a,a)", // duplicate port rejected by Validate
		"(a)",
		"dot(a,b) trailing",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

// Property: String/Parse round-trips random strategy trees.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		next := 0
		var gen func(depth int) Strategy
		gen = func(depth int) Strategy {
			if depth == 0 || r.Intn(3) == 0 {
				next++
				return Port(portName(next))
			}
			n := r.Intn(3) + 1
			children := make([]Strategy, n)
			for i := range children {
				children[i] = gen(depth - 1)
			}
			if r.Intn(2) == 0 {
				return Dot(children...)
			}
			return Cross(children...)
		}
		s := gen(3)
		parsed, err := Parse(s.String())
		return err == nil && parsed.String() == s.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func portName(i int) string {
	name := ""
	for i > 0 {
		name = string(rune('a'+i%26)) + name
		i /= 26
	}
	return "p" + name
}

func TestDecomposeForms(t *testing.T) {
	op, children, port := Decompose(Port("x"))
	if op != OpPort || children != nil || port != "x" {
		t.Fatalf("Decompose(port) = %v %v %q", op, children, port)
	}
	op, children, port = Decompose(Dot(Port("a"), Port("b")))
	if op != OpDot || len(children) != 2 || port != "" {
		t.Fatalf("Decompose(dot) = %v %v %q", op, children, port)
	}
	op, children, _ = Decompose(Cross(Port("a"), Port("b"), Port("c")))
	if op != OpCross || len(children) != 3 {
		t.Fatalf("Decompose(cross) = %v %v", op, children)
	}
}

func TestRenameDeep(t *testing.T) {
	s := Cross(Dot(Port("a"), Port("b")), Port("c"))
	r := Rename(s, func(p string) string { return "X." + p })
	if got := r.String(); got != "cross(dot(X.a,X.b),X.c)" {
		t.Fatalf("renamed = %q", got)
	}
	// The original is untouched.
	if s.String() != "cross(dot(a,b),c)" {
		t.Fatal("Rename mutated its input")
	}
}

func TestCloneIsolatesState(t *testing.T) {
	tr := newTrackerForTest()
	s := Dot(Port("a"), Port("b"))
	c := Clone(s)
	s.Offer("a", tr.Source("A", 0, "A0"))
	// The clone has not seen A0: offering B0 to it completes nothing.
	if out := c.Offer("b", tr.Source("B", 0, "B0")); len(out) != 0 {
		t.Fatalf("clone shares matcher state: %v", out)
	}
	// The original completes normally.
	if out := s.Offer("b", tr.Source("B", 0, "B0")); len(out) != 1 {
		t.Fatalf("original lost state: %v", out)
	}
}
