package iterstrat

// Op identifies the node type of a strategy tree.
type Op int

// Strategy node types.
const (
	OpPort Op = iota
	OpDot
	OpCross
)

// Decompose exposes the structure of a strategy node: its operator, its
// children (nil for leaves), and its port name (empty for operators). The
// enactor's job-grouping pass uses it to rewrite strategy trees.
func Decompose(s Strategy) (op Op, children []Strategy, port string) {
	switch n := s.(type) {
	case *leaf:
		return OpPort, nil, n.name
	case *dot:
		return OpDot, n.children, ""
	case *cross:
		return OpCross, n.children, ""
	default:
		panic("iterstrat: unknown strategy implementation")
	}
}

// Rename returns a fresh strategy tree with every port name mapped through
// f. The result shares no matching state with s.
func Rename(s Strategy, f func(string) string) Strategy {
	op, children, port := Decompose(s)
	switch op {
	case OpPort:
		return Port(f(port))
	case OpDot:
		out := make([]Strategy, len(children))
		for i, c := range children {
			out[i] = Rename(c, f)
		}
		return Dot(out...)
	default:
		out := make([]Strategy, len(children))
		for i, c := range children {
			out[i] = Rename(c, f)
		}
		return Cross(out...)
	}
}

// Clone returns a fresh strategy tree with no shared matching state, so
// one workflow definition can be executed many times.
func Clone(s Strategy) Strategy {
	return Rename(s, func(p string) string { return p })
}
