package iterstrat

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/provenance"
	"repro/internal/rng"
)

// offerAll feeds items in the given order and collects all emitted tuples.
func offerAll(s Strategy, offers []offer) []Tuple {
	var out []Tuple
	for _, o := range offers {
		out = append(out, s.Offer(o.port, o.item)...)
	}
	return out
}

type offer struct {
	port string
	item *provenance.Item
}

func sourceItems(tr *provenance.Tracker, source string, n int) []*provenance.Item {
	items := make([]*provenance.Item, n)
	for i := 0; i < n; i++ {
		items[i] = tr.Source(source, i, fmt.Sprintf("%s%d", source, i))
	}
	return items
}

func TestDotPairsByIndex(t *testing.T) {
	tr := provenance.NewTracker()
	s := Dot(Port("a"), Port("b"))
	as := sourceItems(tr, "A", 3)
	bs := sourceItems(tr, "B", 3)
	var offers []offer
	for i := 0; i < 3; i++ {
		offers = append(offers, offer{"a", as[i]}, offer{"b", bs[i]})
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 3 {
		t.Fatalf("dot emitted %d tuples, want 3", len(tuples))
	}
	for i, tu := range tuples {
		if tu.Items["a"].Value != fmt.Sprintf("A%d", i) || tu.Items["b"].Value != fmt.Sprintf("B%d", i) {
			t.Errorf("tuple %d pairs %s with %s", i, tu.Items["a"], tu.Items["b"])
		}
	}
}

// The causality problem (paper Sec. 4.1): under data+service parallelism
// items arrive out of order; a dot product must still pair A_i with B_i.
func TestDotOutOfOrderArrival(t *testing.T) {
	tr := provenance.NewTracker()
	s := Dot(Port("a"), Port("b"))
	as := sourceItems(tr, "A", 4)
	bs := sourceItems(tr, "B", 4)
	offers := []offer{
		{"a", as[2]}, {"b", bs[0]}, {"b", bs[2]}, // A2+B2 completes here
		{"a", as[0]},                             // A0+B0 completes here
		{"a", as[1]}, {"a", as[3]}, {"b", bs[3]}, // A3+B3 completes here
		{"b", bs[1]}, // A1+B1 completes here
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 4 {
		t.Fatalf("emitted %d tuples, want 4", len(tuples))
	}
	for _, tu := range tuples {
		ai, bi := tu.Items["a"].Index[0], tu.Items["b"].Index[0]
		if ai != bi {
			t.Errorf("dot paired A%d with B%d despite provenance indices", ai, bi)
		}
	}
}

func TestDotMinCardinality(t *testing.T) {
	tr := provenance.NewTracker()
	s := Dot(Port("a"), Port("b"))
	var offers []offer
	for _, it := range sourceItems(tr, "A", 5) {
		offers = append(offers, offer{"a", it})
	}
	for _, it := range sourceItems(tr, "B", 3) {
		offers = append(offers, offer{"b", it})
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 3 {
		t.Fatalf("dot of 5 and 3 emitted %d tuples, want min(5,3)=3", len(tuples))
	}
}

func TestCrossAllPairs(t *testing.T) {
	tr := provenance.NewTracker()
	s := Cross(Port("a"), Port("b"))
	var offers []offer
	for _, it := range sourceItems(tr, "A", 3) {
		offers = append(offers, offer{"a", it})
	}
	for _, it := range sourceItems(tr, "B", 4) {
		offers = append(offers, offer{"b", it})
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 12 {
		t.Fatalf("cross of 3 and 4 emitted %d tuples, want 12", len(tuples))
	}
	seen := make(map[string]bool)
	for _, tu := range tuples {
		key := provenance.Key(tu.Index)
		if seen[key] {
			t.Fatalf("duplicate cross tuple %s", key)
		}
		seen[key] = true
		if len(tu.Index) != 2 {
			t.Fatalf("cross index = %v, want 2 dimensions", tu.Index)
		}
	}
}

func TestCrossIndexConcatenationOrder(t *testing.T) {
	tr := provenance.NewTracker()
	s := Cross(Port("a"), Port("b"))
	a2 := tr.Source("A", 2, "A2")
	b5 := tr.Source("B", 5, "B5")
	// Offer b first: the index must still be (a,b) = [2 5], child order.
	s.Offer("b", b5)
	tuples := s.Offer("a", a2)
	if len(tuples) != 1 {
		t.Fatalf("got %d tuples", len(tuples))
	}
	if k := provenance.Key(tuples[0].Index); k != "2.5" {
		t.Fatalf("index key = %q, want \"2.5\" (child order, not arrival order)", k)
	}
}

func TestComposedCrossOfDot(t *testing.T) {
	// cross(dot(a,b), c): the Bronze pattern of iterating image pairs
	// against a parameter list.
	tr := provenance.NewTracker()
	s := Cross(Dot(Port("a"), Port("b")), Port("c"))
	var offers []offer
	for _, it := range sourceItems(tr, "A", 3) {
		offers = append(offers, offer{"a", it})
	}
	for _, it := range sourceItems(tr, "B", 3) {
		offers = append(offers, offer{"b", it})
	}
	for _, it := range sourceItems(tr, "C", 2) {
		offers = append(offers, offer{"c", it})
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 6 {
		t.Fatalf("cross(dot(3,3),2) emitted %d, want 6", len(tuples))
	}
	for _, tu := range tuples {
		if len(tu.Index) != 2 {
			t.Fatalf("index = %v, want [pair, param]", tu.Index)
		}
		if tu.Items["a"].Index[0] != tu.Items["b"].Index[0] {
			t.Fatal("inner dot misaligned inside cross")
		}
	}
}

func TestComposedDotOfCross(t *testing.T) {
	// dot(cross(a,b), cross(c,d)): matches identical 2-D indices.
	tr := provenance.NewTracker()
	s := Dot(Cross(Port("a"), Port("b")), Cross(Port("c"), Port("d")))
	var offers []offer
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, it := range sourceItems(tr, src, 2) {
			offers = append(offers, offer{src, it})
		}
	}
	tuples := offerAll(s, offers)
	if len(tuples) != 4 {
		t.Fatalf("dot(cross(2,2),cross(2,2)) emitted %d, want 4", len(tuples))
	}
	for _, tu := range tuples {
		if tu.Items["a"].Index[0] != tu.Items["c"].Index[0] ||
			tu.Items["b"].Index[0] != tu.Items["d"].Index[0] {
			t.Fatalf("outer dot paired mismatched 2-D indices: %v", tu.Index)
		}
	}
}

func TestSingleChildOperatorsAreIdentity(t *testing.T) {
	tr := provenance.NewTracker()
	for _, s := range []Strategy{Dot(Port("a")), Cross(Port("a"))} {
		items := sourceItems(tr, "A", 3)
		var n int
		for _, it := range items {
			n += len(s.Offer("a", it))
		}
		if n != 3 {
			t.Errorf("%s emitted %d tuples for 3 items, want 3", s, n)
		}
	}
}

func TestOfferUnknownPortIgnored(t *testing.T) {
	tr := provenance.NewTracker()
	s := Dot(Port("a"), Port("b"))
	if out := s.Offer("zzz", tr.Source("Z", 0, "z")); out != nil {
		t.Fatalf("unknown port emitted %v", out)
	}
}

func TestCount(t *testing.T) {
	counts := map[string]int{"a": 5, "b": 3, "c": 4}
	cases := []struct {
		s    Strategy
		want int
	}{
		{Port("a"), 5},
		{Dot(Port("a"), Port("b")), 3},
		{Cross(Port("a"), Port("b")), 15},
		{Cross(Dot(Port("a"), Port("b")), Port("c")), 12},
		{Dot(Port("a"), Port("b"), Port("c")), 3},
		{Cross(Port("a"), Port("b"), Port("c")), 60},
	}
	for _, c := range cases {
		if got := c.s.Count(counts); got != c.want {
			t.Errorf("%s.Count = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	s := Cross(Dot(Port("a"), Port("b")), Port("c"))
	if got := s.String(); got != "cross(dot(a,b),c)" {
		t.Errorf("String = %q", got)
	}
}

func TestPortsOrder(t *testing.T) {
	s := Cross(Dot(Port("x"), Port("y")), Port("z"))
	got := s.Ports()
	want := []string{"x", "y", "z"}
	if len(got) != len(want) {
		t.Fatalf("Ports = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ports = %v, want %v", got, want)
		}
	}
}

func TestValidateDuplicatePort(t *testing.T) {
	if err := Validate(Dot(Port("a"), Port("a"))); err == nil {
		t.Fatal("duplicate port not rejected")
	}
	if err := Validate(Cross(Dot(Port("a"), Port("b")), Port("c"))); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestReset(t *testing.T) {
	tr := provenance.NewTracker()
	s := Cross(Port("a"), Port("b"))
	s.Offer("a", tr.Source("A", 0, "A0"))
	s.Offer("b", tr.Source("B", 0, "B0"))
	s.Reset()
	// After reset, previously seen items are forgotten.
	out := s.Offer("a", tr.Source("A", 1, "A1"))
	if len(out) != 0 {
		t.Fatalf("reset cross still remembered old items: %v", out)
	}
}

func TestEmptyOperatorsPanic(t *testing.T) {
	for name, f := range map[string]func(){"dot": func() { Dot() }, "cross": func() { Cross() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s() with no children did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDotEmitsEachIndexOnce(t *testing.T) {
	tr := provenance.NewTracker()
	s := Dot(Port("a"), Port("b"))
	s.Offer("a", tr.Source("A", 0, "A0"))
	first := s.Offer("b", tr.Source("B", 0, "B0"))
	if len(first) != 1 {
		t.Fatalf("first completion emitted %d", len(first))
	}
}

// Property: for any arrival interleaving, dot(a,b) emits exactly
// min(n,m) tuples and every tuple is index-aligned.
func TestQuickDotAnyOrder(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n, m := int(nRaw%10)+1, int(mRaw%10)+1
		tr := provenance.NewTracker()
		var offers []offer
		for _, it := range sourceItems(tr, "A", n) {
			offers = append(offers, offer{"a", it})
		}
		for _, it := range sourceItems(tr, "B", m) {
			offers = append(offers, offer{"b", it})
		}
		r := rng.New(seed)
		perm := r.Perm(len(offers))
		shuffled := make([]offer, len(offers))
		for i, p := range perm {
			shuffled[i] = offers[p]
		}
		s := Dot(Port("a"), Port("b"))
		tuples := offerAll(s, shuffled)
		if len(tuples) != min(n, m) {
			return false
		}
		for _, tu := range tuples {
			if tu.Items["a"].Index[0] != tu.Items["b"].Index[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for any arrival interleaving, cross(a,b) emits exactly n*m
// distinct index pairs.
func TestQuickCrossAnyOrder(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n, m := int(nRaw%8)+1, int(mRaw%8)+1
		tr := provenance.NewTracker()
		var offers []offer
		for _, it := range sourceItems(tr, "A", n) {
			offers = append(offers, offer{"a", it})
		}
		for _, it := range sourceItems(tr, "B", m) {
			offers = append(offers, offer{"b", it})
		}
		r := rng.New(seed)
		perm := r.Perm(len(offers))
		s := Cross(Port("a"), Port("b"))
		keys := make(map[string]bool)
		for _, p := range perm {
			for _, tu := range s.Offer(offers[p].port, offers[p].item) {
				keys[provenance.Key(tu.Index)] = true
			}
		}
		return len(keys) == n*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Count agrees with actual emission counts for composed trees.
func TestQuickCountMatchesEmission(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw, kRaw uint8) bool {
		n, m, k := int(nRaw%5)+1, int(mRaw%5)+1, int(kRaw%3)+1
		tr := provenance.NewTracker()
		s := Cross(Dot(Port("a"), Port("b")), Port("c"))
		var offers []offer
		for _, it := range sourceItems(tr, "A", n) {
			offers = append(offers, offer{"a", it})
		}
		for _, it := range sourceItems(tr, "B", m) {
			offers = append(offers, offer{"b", it})
		}
		for _, it := range sourceItems(tr, "C", k) {
			offers = append(offers, offer{"c", it})
		}
		r := rng.New(seed)
		perm := r.Perm(len(offers))
		emitted := 0
		for _, p := range perm {
			emitted += len(s.Offer(offers[p].port, offers[p].item))
		}
		want := s.Count(map[string]int{"a": n, "b": m, "c": k})
		return emitted == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Deterministic emission order: replaying identical offers yields identical
// tuple sequences (required for simulator determinism).
func TestDeterministicEmissionOrder(t *testing.T) {
	mk := func() []string {
		tr := provenance.NewTracker()
		s := Cross(Port("a"), Port("b"))
		var keys []string
		for _, it := range sourceItems(tr, "A", 3) {
			for _, tu := range s.Offer("a", it) {
				keys = append(keys, provenance.Key(tu.Index))
			}
		}
		for _, it := range sourceItems(tr, "B", 3) {
			for _, tu := range s.Offer("b", it) {
				keys = append(keys, provenance.Key(tu.Index))
			}
		}
		return keys
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("replay length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission order differs at %d: %v vs %v", i, a, b)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func newTrackerForTest() *provenance.Tracker { return provenance.NewTracker() }

func TestCountHandlesZero(t *testing.T) {
	s := Dot(Port("a"), Port("b"))
	if got := s.Count(map[string]int{"a": 0, "b": 5}); got != 0 {
		t.Fatalf("Count with empty input = %d, want 0", got)
	}
	c := Cross(Port("a"), Port("b"))
	if got := c.Count(map[string]int{"a": 0, "b": 5}); got != 0 {
		t.Fatalf("cross Count with empty input = %d, want 0", got)
	}
}

func TestOperatorsIgnoreForeignPorts(t *testing.T) {
	tr := provenance.NewTracker()
	d := Dot(Port("a"), Port("b"))
	c := Cross(Port("x"), Port("y"))
	if out := d.Offer("x", tr.Source("X", 0, "x")); out != nil {
		t.Fatalf("dot accepted foreign port: %v", out)
	}
	if out := c.Offer("a", tr.Source("A", 0, "a")); out != nil {
		t.Fatalf("cross accepted foreign port: %v", out)
	}
}

func TestDotResetClearsPending(t *testing.T) {
	tr := provenance.NewTracker()
	d := Dot(Port("a"), Port("b"))
	d.Offer("a", tr.Source("A", 0, "A0"))
	d.Reset()
	if out := d.Offer("b", tr.Source("B", 0, "B0")); len(out) != 0 {
		t.Fatalf("reset dot kept pending state: %v", out)
	}
}
