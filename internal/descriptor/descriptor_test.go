package descriptor

import (
	"strings"
	"testing"
	"testing/quick"
)

// figure8 is the paper's example descriptor (Fig. 8) verbatim.
const figure8 = `<description>
<executable name="CrestLines.pl">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="CrestLines.pl"/>
<input name="floating_image" option="-im1">
<access type="GFN"/>
</input>
<input name="reference_image" option="-im2">
<access type="GFN"/>
</input>
<input name="scale" option="-s"/>
<output name="crest_reference" option="-c1">
<access type="GFN"/>
</output>
<output name="crest_floating" option="-c2">
<access type="GFN"/>
</output>
<sandbox name="convert8bits">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="Convert8bits.pl"/>
</sandbox>
<sandbox name="copy">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="copy"/>
</sandbox>
<sandbox name="cmatch">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="cmatch"/>
</sandbox>
</executable>
</description>`

func parseFigure8(t *testing.T) *Description {
	t.Helper()
	d, err := Parse([]byte(figure8))
	if err != nil {
		t.Fatalf("Parse(figure 8) failed: %v", err)
	}
	return d
}

func TestParseFigure8(t *testing.T) {
	d := parseFigure8(t)
	e := d.Executable
	if e.Name != "CrestLines.pl" {
		t.Errorf("executable name = %q", e.Name)
	}
	if e.Access == nil || e.Access.Type != URL || e.Access.Path == nil ||
		e.Access.Path.Value != "http://colors.unice.fr" {
		t.Errorf("executable access = %+v", e.Access)
	}
	if len(e.Inputs) != 3 {
		t.Fatalf("inputs = %d, want 3", len(e.Inputs))
	}
	if e.Inputs[0].Name != "floating_image" || e.Inputs[0].Option != "-im1" || !e.Inputs[0].IsFile() {
		t.Errorf("input 0 = %+v", e.Inputs[0])
	}
	if e.Inputs[2].Name != "scale" || e.Inputs[2].IsFile() {
		t.Errorf("scale should be a parameter: %+v", e.Inputs[2])
	}
	if len(e.Outputs) != 2 || e.Outputs[0].Option != "-c1" || e.Outputs[0].Access.Type != GFN {
		t.Errorf("outputs = %+v", e.Outputs)
	}
	if len(e.Sandboxes) != 3 || e.Sandboxes[0].Value.Value != "Convert8bits.pl" {
		t.Errorf("sandboxes = %+v", e.Sandboxes)
	}
}

func TestRoundTrip(t *testing.T) {
	d := parseFigure8(t)
	out, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of marshalled descriptor failed: %v\n%s", err, out)
	}
	if d2.Executable.Name != d.Executable.Name ||
		len(d2.Executable.Inputs) != len(d.Executable.Inputs) ||
		len(d2.Executable.Outputs) != len(d.Executable.Outputs) ||
		len(d2.Executable.Sandboxes) != len(d.Executable.Sandboxes) {
		t.Fatalf("round trip lost structure: %+v", d2.Executable)
	}
}

func TestCommandLineFigure8(t *testing.T) {
	d := parseFigure8(t)
	cmd, err := d.CommandLine(Bindings{
		Inputs: map[string]string{
			"floating_image":  "gfn://flo7",
			"reference_image": "gfn://ref7",
			"scale":           "1.5",
		},
		Outputs: map[string]string{
			"crest_reference": "gfn://cr7",
			"crest_floating":  "gfn://cf7",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "CrestLines.pl -im1 gfn://flo7 -im2 gfn://ref7 -s 1.5 -c1 gfn://cr7 -c2 gfn://cf7"
	if cmd != want {
		t.Errorf("command line:\n got %q\nwant %q", cmd, want)
	}
}

func TestCommandLineMissingInput(t *testing.T) {
	d := parseFigure8(t)
	_, err := d.CommandLine(Bindings{
		Inputs:  map[string]string{"floating_image": "f"},
		Outputs: map[string]string{"crest_reference": "a", "crest_floating": "b"},
	})
	if err == nil || !strings.Contains(err.Error(), "reference_image") {
		t.Fatalf("missing input not reported: %v", err)
	}
}

func TestCommandLineMissingOutput(t *testing.T) {
	d := parseFigure8(t)
	_, err := d.CommandLine(Bindings{
		Inputs: map[string]string{
			"floating_image": "f", "reference_image": "r", "scale": "1",
		},
		Outputs: map[string]string{"crest_reference": "a"},
	})
	if err == nil || !strings.Contains(err.Error(), "crest_floating") {
		t.Fatalf("missing output not reported: %v", err)
	}
}

func TestStageIns(t *testing.T) {
	d := parseFigure8(t)
	files, err := d.StageIns(Bindings{Inputs: map[string]string{
		"floating_image":  "gfn://flo",
		"reference_image": "gfn://ref",
		"scale":           "2.0",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "gfn://flo" || files[1] != "gfn://ref" {
		t.Fatalf("StageIns = %v (parameters must not be staged)", files)
	}
}

func TestStageInsUnbound(t *testing.T) {
	d := parseFigure8(t)
	if _, err := d.StageIns(Bindings{Inputs: map[string]string{}}); err == nil {
		t.Fatal("unbound file input not reported")
	}
}

func TestInputLookup(t *testing.T) {
	d := parseFigure8(t)
	in, ok := d.Input("scale")
	if !ok || in.Option != "-s" {
		t.Fatalf("Input(scale) = %+v, %v", in, ok)
	}
	if _, ok := d.Input("nonexistent"); ok {
		t.Fatal("Input(nonexistent) found")
	}
}

func TestNameLists(t *testing.T) {
	d := parseFigure8(t)
	ins := d.InputNames()
	if len(ins) != 3 || ins[0] != "floating_image" || ins[2] != "scale" {
		t.Fatalf("InputNames = %v", ins)
	}
	outs := d.OutputNames()
	if len(outs) != 2 || outs[1] != "crest_floating" {
		t.Fatalf("OutputNames = %v", outs)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		xml  string
		want string
	}{
		{
			"no executable name",
			`<description><executable></executable></description>`,
			"no name",
		},
		{
			"input without option",
			`<description><executable name="x"><input name="a"/></executable></description>`,
			"no command-line option",
		},
		{
			"duplicate names",
			`<description><executable name="x">
			 <input name="a" option="-a"/><input name="a" option="-b"/>
			 </executable></description>`,
			"used by both",
		},
		{
			"output without access",
			`<description><executable name="x"><output name="o" option="-o"/></executable></description>`,
			"no access method",
		},
		{
			"sandbox without access",
			`<description><executable name="x"><sandbox name="s"/></executable></description>`,
			"no access method",
		},
		{
			"empty input name",
			`<description><executable name="x"><input option="-a"/></executable></description>`,
			"empty name",
		},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.xml)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestParseMalformedXML(t *testing.T) {
	if _, err := Parse([]byte("<description><executable")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestCompose(t *testing.T) {
	got := Compose("a -x 1", "b -y 2", "c")
	if got != "a -x 1 && b -y 2 && c" {
		t.Fatalf("Compose = %q", got)
	}
	if Compose("solo") != "solo" {
		t.Fatal("single-command compose altered the command")
	}
}

// Property: for any binding values, the composed command line contains every
// option and every bound value in declaration order.
func TestQuickCommandLineComplete(t *testing.T) {
	d := parseFigure8(t)
	f := func(a, b, c uint32) bool {
		bind := Bindings{
			Inputs: map[string]string{
				"floating_image":  "gfn://f" + itoa(a),
				"reference_image": "gfn://r" + itoa(b),
				"scale":           itoa(c),
			},
			Outputs: map[string]string{
				"crest_reference": "gfn://c1" + itoa(a),
				"crest_floating":  "gfn://c2" + itoa(b),
			},
		}
		cmd, err := d.CommandLine(bind)
		if err != nil {
			return false
		}
		last := -1
		for _, tok := range []string{"-im1", "-im2", "-s", "-c1", "-c2"} {
			i := strings.Index(cmd, tok+" ")
			if i <= last {
				return false
			}
			last = i
		}
		for _, v := range bind.Inputs {
			if !strings.Contains(cmd, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(v uint32) string {
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%10]}, b...)
		v /= 10
	}
	return string(b)
}
