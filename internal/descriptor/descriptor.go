// Package descriptor implements the XML executable descriptor of the
// paper's generic wrapper service (Sec. 3.6, Fig. 8).
//
// A descriptor is a complete-enough description of a legacy command-line
// code that the wrapper can compose the actual command line dynamically at
// invocation time: the executable and how to fetch it, sandboxed companion
// files (scripts, dynamic libraries), the command-line option of every
// input file, input parameter and output file, and the access method
// (URL, GFN, local) of each file. Writing this descriptor is the only work
// an application developer must do to make a legacy code service-aware —
// and because the workflow enactor can read descriptors, it can compose the
// command lines of several codes into a single grid job (job grouping).
package descriptor

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// AccessType says how a file is fetched or registered.
type AccessType string

// Access methods supported by the wrapper (paper Sec. 3.6, item 1).
const (
	// URL: fetched from a web server (executables, sandboxes).
	URL AccessType = "URL"
	// GFN: a Grid File Name resolved through the replica catalog.
	GFN AccessType = "GFN"
	// Local: a file already present on the execution host.
	Local AccessType = "local"
)

// Access is an access method, optionally with the server path the file is
// fetched from.
type Access struct {
	Type AccessType `xml:"type,attr"`
	Path *Path      `xml:"path"`
}

// Path is the location element nested inside an access method.
type Path struct {
	Value string `xml:"value,attr"`
}

// ValueElem is the <value value="..."/> element naming a concrete file.
type ValueElem struct {
	Value string `xml:"value,attr"`
}

// Input is a command-line input: a file (when Access is set) or a plain
// parameter (no access method, paper Sec. 3.6 item 4).
type Input struct {
	Name   string  `xml:"name,attr"`
	Option string  `xml:"option,attr"`
	Access *Access `xml:"access"`
}

// IsFile reports whether the input denotes a file to stage (rather than a
// literal parameter).
func (in Input) IsFile() bool { return in.Access != nil }

// Output is a produced file: its command-line option and the access method
// used to register it after execution.
type Output struct {
	Name   string  `xml:"name,attr"`
	Option string  `xml:"option,attr"`
	Access *Access `xml:"access"`
}

// Sandbox is a companion file needed at execution time that does not
// appear on the command line (scripts, dynamic libraries).
type Sandbox struct {
	Name   string     `xml:"name,attr"`
	Access *Access    `xml:"access"`
	Value  *ValueElem `xml:"value"`
}

// Executable describes the legacy code itself.
type Executable struct {
	Name      string     `xml:"name,attr"`
	Access    *Access    `xml:"access"`
	Value     *ValueElem `xml:"value"`
	Inputs    []Input    `xml:"input"`
	Outputs   []Output   `xml:"output"`
	Sandboxes []Sandbox  `xml:"sandbox"`
}

// Description is the document root.
type Description struct {
	XMLName    xml.Name   `xml:"description"`
	Executable Executable `xml:"executable"`
}

// Parse decodes a descriptor document and validates it.
func Parse(data []byte) (*Description, error) {
	var d Description
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("descriptor: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Marshal encodes the descriptor as indented XML.
func (d *Description) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("descriptor: %w", err)
	}
	return out, nil
}

// Validate checks structural completeness: a named executable, uniquely
// named inputs/outputs/sandboxes, options on all command-line arguments,
// and access methods on outputs and sandboxes.
func (d *Description) Validate() error {
	e := &d.Executable
	if e.Name == "" {
		return fmt.Errorf("descriptor: executable has no name")
	}
	names := make(map[string]string)
	claim := func(kind, name string) error {
		if name == "" {
			return fmt.Errorf("descriptor %s: %s with empty name", e.Name, kind)
		}
		if prev, dup := names[name]; dup {
			return fmt.Errorf("descriptor %s: name %q used by both %s and %s", e.Name, name, prev, kind)
		}
		names[name] = kind
		return nil
	}
	for _, in := range e.Inputs {
		if err := claim("input", in.Name); err != nil {
			return err
		}
		if in.Option == "" {
			return fmt.Errorf("descriptor %s: input %q has no command-line option", e.Name, in.Name)
		}
	}
	for _, out := range e.Outputs {
		if err := claim("output", out.Name); err != nil {
			return err
		}
		if out.Option == "" {
			return fmt.Errorf("descriptor %s: output %q has no command-line option", e.Name, out.Name)
		}
		if out.Access == nil {
			return fmt.Errorf("descriptor %s: output %q has no access method", e.Name, out.Name)
		}
	}
	for _, sb := range e.Sandboxes {
		if err := claim("sandbox", sb.Name); err != nil {
			return err
		}
		if sb.Access == nil {
			return fmt.Errorf("descriptor %s: sandbox %q has no access method", e.Name, sb.Name)
		}
	}
	return nil
}

// InputNames returns the declared input names in order.
func (d *Description) InputNames() []string {
	out := make([]string, len(d.Executable.Inputs))
	for i, in := range d.Executable.Inputs {
		out[i] = in.Name
	}
	return out
}

// OutputNames returns the declared output names in order.
func (d *Description) OutputNames() []string {
	out := make([]string, len(d.Executable.Outputs))
	for i, o := range d.Executable.Outputs {
		out[i] = o.Name
	}
	return out
}

// Input returns the named input declaration.
func (d *Description) Input(name string) (Input, bool) {
	for _, in := range d.Executable.Inputs {
		if in.Name == name {
			return in, true
		}
	}
	return Input{}, false
}

// Bindings carries the actual values bound at invocation time: input files
// and parameters by input name, and the output file names the wrapper
// chose for this invocation.
type Bindings struct {
	Inputs  map[string]string
	Outputs map[string]string
}

// CommandLine composes the actual command line from the descriptor and the
// bindings, in declaration order — the dynamic composition the paper's
// wrapper performs at service invocation time. Every declared input and
// output must be bound.
func (d *Description) CommandLine(b Bindings) (string, error) {
	e := &d.Executable
	var parts []string
	parts = append(parts, e.Name)
	for _, in := range e.Inputs {
		v, ok := b.Inputs[in.Name]
		if !ok {
			return "", fmt.Errorf("descriptor %s: input %q not bound", e.Name, in.Name)
		}
		parts = append(parts, in.Option, v)
	}
	for _, out := range e.Outputs {
		v, ok := b.Outputs[out.Name]
		if !ok {
			return "", fmt.Errorf("descriptor %s: output %q not bound", e.Name, out.Name)
		}
		parts = append(parts, out.Option, v)
	}
	return strings.Join(parts, " "), nil
}

// StageIns returns the catalog names of the files that must be transferred
// to the worker node for this invocation: every bound input whose access
// method is GFN. URL-accessed files (executable, sandboxes) are fetched
// from their web server and are accounted separately.
func (d *Description) StageIns(b Bindings) ([]string, error) {
	var files []string
	for _, in := range d.Executable.Inputs {
		if !in.IsFile() {
			continue
		}
		v, ok := b.Inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("descriptor %s: input %q not bound", d.Executable.Name, in.Name)
		}
		if in.Access.Type == GFN {
			files = append(files, v)
		}
	}
	return files, nil
}

// Compose joins the command lines of several invocations into the single
// command executed by a grouped job, in sequence.
func Compose(commands ...string) string {
	return strings.Join(commands, " && ")
}
