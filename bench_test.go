// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the real experiment in virtual time;
// simulated quantities are reported as custom metrics (sim_s = simulated
// seconds of execution time), so `go test -bench . -benchmem` reproduces
// the paper's numbers alongside the harness cost.
package moteur

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/bronze"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// BenchmarkTable1 regenerates Table 1: one sub-benchmark per
// (configuration, input size) cell; sim_s reports the simulated execution
// time of that cell.
func BenchmarkTable1(b *testing.B) {
	for _, cfg := range bronze.Configurations() {
		for _, size := range bronze.PaperSizes {
			name := fmt.Sprintf("%s/%d", cfg.Name, size)
			b.Run(name, func(b *testing.B) {
				var last time.Duration
				for i := 0; i < b.N; i++ {
					p := bronze.DefaultParams()
					p.Seed = 1 + uint64(size)
					res, _, err := bronze.Run(size, cfg.Opts, p)
					if err != nil {
						b.Fatal(err)
					}
					last = res.Makespan
				}
				b.ReportMetric(last.Seconds(), "sim_s")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the full experiment plus the
// per-configuration regressions; the NOP slope (s per data set) is
// reported as a representative metric.
func BenchmarkTable2(b *testing.B) {
	var slope, intercept float64
	for i := 0; i < b.N; i++ {
		rows, err := bronze.Table1(bronze.PaperSizes, bronze.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		regs, err := bronze.Table2(rows)
		if err != nil {
			b.Fatal(err)
		}
		slope, intercept = regs[0].Line.Slope, regs[0].Line.Intercept
	}
	b.ReportMetric(slope, "NOP_slope_s")
	b.ReportMetric(intercept, "NOP_yint_s")
}

// BenchmarkFigure10 regenerates the Figure 10 series over five input
// sizes; sim_s reports the SP+DP+JG execution time at the largest size.
func BenchmarkFigure10(b *testing.B) {
	sizes := []int{12, 36, 66, 96, 126}
	var last time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := bronze.Figure10(sizes, bronze.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].Times[len(sizes)-1]
	}
	b.ReportMetric(last.Seconds(), "sim_s")
}

// BenchmarkRatios regenerates the Sec. 5.2–5.3 analysis; the headline
// speed-up (SP+DP+JG vs NOP at 126 pairs; paper ≈ 9) is the metric.
func BenchmarkRatios(b *testing.B) {
	var headline float64
	for i := 0; i < b.N; i++ {
		rows, err := bronze.Table1(bronze.PaperSizes, bronze.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		r, err := bronze.ComputeRatios(rows)
		if err != nil {
			b.Fatal(err)
		}
		headline = r.FullvsNOP[len(r.FullvsNOP)-1]
	}
	b.ReportMetric(headline, "speedup")
}

// chainWorkflow builds the Fig. 1 three-service pipeline used by the
// diagram figures.
func chainWorkflow(eng *sim.Engine, durs [3][3]time.Duration) *workflow.Workflow {
	w := workflow.New("fig1")
	w.AddSource("src")
	for i := 0; i < 3; i++ {
		i := i
		name := fmt.Sprintf("P%d", i+1)
		m := func(req services.Request) time.Duration { return durs[i][req.Index[0]] }
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService(name, services.NewLocal(eng, name, 1<<20, m, echo),
			[]string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P1", "in")
	w.Connect("P1", "out", "P2", "in")
	w.Connect("P2", "out", "P3", "in")
	w.Connect("P3", "out", "sink", workflow.SinkPort)
	return w
}

func benchDiagram(b *testing.B, durs [3][3]time.Duration, opts core.Options) {
	var makespan time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		w := chainWorkflow(eng, durs)
		e, err := core.New(eng, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run(map[string][]string{"src": {"0", "1", "2"}})
		if err != nil {
			b.Fatal(err)
		}
		diagram.Render(res.Trace, []string{"P1", "P2", "P3"}, 10*time.Second)
		makespan = res.Makespan
	}
	b.ReportMetric(makespan.Seconds(), "sim_s")
}

func constDurs() [3][3]time.Duration {
	var d [3][3]time.Duration
	for i := range d {
		for j := range d[i] {
			d[i][j] = 10 * time.Second
		}
	}
	return d
}

// BenchmarkFigure4 regenerates the data-parallel execution diagram
// (3 stages × 3 items, DP on: sim_s = 30, three stage rows).
func BenchmarkFigure4(b *testing.B) {
	benchDiagram(b, constDurs(), core.Options{DataParallelism: true})
}

// BenchmarkFigure5 regenerates the service-parallel (pipelined) execution
// diagram (sim_s = (nD+nW−1)·T = 50).
func BenchmarkFigure5(b *testing.B) {
	benchDiagram(b, constDurs(), core.Options{ServiceParallelism: true})
}

// BenchmarkFigure6 regenerates the variable-time comparison: DP only
// (left, sim_s = 60) versus DP+SP (right, sim_s = 50).
func BenchmarkFigure6(b *testing.B) {
	durs := constDurs()
	durs[0][0] = 20 * time.Second
	durs[1][1] = 30 * time.Second
	b.Run("left-DP", func(b *testing.B) {
		benchDiagram(b, durs, core.Options{DataParallelism: true})
	})
	b.Run("right-DP+SP", func(b *testing.B) {
		benchDiagram(b, durs, core.Options{DataParallelism: true, ServiceParallelism: true})
	})
}

// BenchmarkModelEquations measures the closed-form model (Sec. 3.5.3) on a
// large duration matrix; the SP recurrence dominates.
func BenchmarkModelEquations(b *testing.B) {
	r := rng.New(1)
	m := make(model.Matrix, 10)
	for i := range m {
		m[i] = make([]time.Duration, 1000)
		for j := range m[i] {
			m[i][j] = time.Duration(r.Intn(1000)) * time.Second
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Sequential(m)
		model.DP(m)
		model.SP(m)
		model.DSP(m)
	}
}

// BenchmarkEnactorVsModel validates (and times) the enactor against the
// four equations on an ideal substrate, as in Sec. 3.5.4.
func BenchmarkEnactorVsModel(b *testing.B) {
	const nW, nD = 5, 20
	m := model.Constant(nW, nD, 10*time.Second)
	cases := []struct {
		opts core.Options
		want time.Duration
	}{
		{core.Options{}, model.Sequential(m)},
		{core.Options{DataParallelism: true}, model.DP(m)},
		{core.Options{ServiceParallelism: true}, model.SP(m)},
		{core.Options{DataParallelism: true, ServiceParallelism: true}, model.DSP(m)},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			eng := sim.NewEngine()
			w := workflow.New("chain")
			w.AddSource("src")
			prev := "src"
			prevPort := workflow.SourcePort
			for s := 0; s < nW; s++ {
				name := fmt.Sprintf("P%d", s)
				echo := func(req services.Request) map[string]string {
					return map[string]string{"out": req.Inputs["in"]}
				}
				w.AddService(name, services.NewLocal(eng, name, 1<<20,
					services.ConstantRuntime(10*time.Second), echo),
					[]string{"in"}, []string{"out"})
				w.Connect(prev, prevPort, name, "in")
				prev, prevPort = name, "out"
			}
			w.AddSink("sink")
			w.Connect(prev, prevPort, "sink", workflow.SinkPort)
			e, err := core.New(eng, w, c.opts)
			if err != nil {
				b.Fatal(err)
			}
			inputs := make([]string, nD)
			for j := range inputs {
				inputs[j] = fmt.Sprintf("D%d", j)
			}
			res, err := e.Run(map[string][]string{"src": inputs})
			if err != nil {
				b.Fatal(err)
			}
			if res.Makespan != c.want {
				b.Fatalf("%s: enactor %v, model %v", c.opts, res.Makespan, c.want)
			}
		}
	}
}

// reuseEcho returns an in→out echo that reuses one response map per
// service: the enactor consumes Response.Outputs synchronously inside the
// completion callback, so the harness itself adds no per-invocation
// allocations to the measurement.
func reuseEcho() func(services.Request) map[string]string {
	out := make(map[string]string, 1)
	return func(req services.Request) map[string]string {
		out["out"] = req.Inputs["in"]
		return out
	}
}

// scaleChain builds a linear pipeline of nW echo services on an ideal
// (local, uncontended) substrate, so the benchmark measures pure enactor
// overhead rather than grid simulation.
func scaleChain(eng *sim.Engine, nW int) *workflow.Workflow {
	w := workflow.New("scale-chain")
	w.AddSource("src")
	prev, prevPort := "src", workflow.SourcePort
	for s := 0; s < nW; s++ {
		name := fmt.Sprintf("P%02d", s)
		w.AddService(name, services.NewLocal(eng, name, 1<<20,
			services.ConstantRuntime(10*time.Second), reuseEcho()),
			[]string{"in"}, []string{"out"})
		w.Connect(prev, prevPort, name, "in")
		prev, prevPort = name, "out"
	}
	w.AddSink("sink")
	w.Connect(prev, prevPort, "sink", workflow.SinkPort)
	return w
}

// scaleFanout builds a one-level fan-out of width parallel echo services
// between one source and one sink.
func scaleFanout(eng *sim.Engine, width int) *workflow.Workflow {
	w := workflow.New("scale-fanout")
	w.AddSource("src")
	w.AddSink("sink")
	for s := 0; s < width; s++ {
		name := fmt.Sprintf("F%02d", s)
		w.AddService(name, services.NewLocal(eng, name, 1<<20,
			services.ConstantRuntime(10*time.Second), reuseEcho()),
			[]string{"in"}, []string{"out"})
		w.Connect("src", workflow.SourcePort, name, "in")
		w.Connect(name, "out", "sink", workflow.SinkPort)
	}
	return w
}

// BenchmarkEnactorScale measures the wall-clock cost of the enactor
// control loop as the data-set size grows: chain and fan-out topologies of
// 64 services at nD ∈ {100, 1000, 5000} items under SP+DP. The simulated
// makespan is a closed-form constant per topology, so the benchmark doubles
// as a determinism check while isolating enactor (not grid) overhead.
func BenchmarkEnactorScale(b *testing.B) {
	const nW = 64
	opts := core.Options{DataParallelism: true, ServiceParallelism: true}
	shapes := []struct {
		name  string
		build func(*sim.Engine) *workflow.Workflow
		want  time.Duration
	}{
		{"chain", func(eng *sim.Engine) *workflow.Workflow { return scaleChain(eng, nW) },
			time.Duration(nW) * 10 * time.Second},
		{"fanout", func(eng *sim.Engine) *workflow.Workflow { return scaleFanout(eng, nW) },
			10 * time.Second},
	}
	for _, shape := range shapes {
		for _, nD := range []int{100, 1000, 5000} {
			inputs := make([]string, nD)
			for j := range inputs {
				inputs[j] = fmt.Sprintf("D%d", j)
			}
			b.Run(fmt.Sprintf("%s/nD=%d", shape.name, nD), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng := sim.NewEngine()
					w := shape.build(eng)
					e, err := core.New(eng, w, opts)
					if err != nil {
						b.Fatal(err)
					}
					res, err := e.Run(map[string][]string{"src": inputs})
					if err != nil {
						b.Fatal(err)
					}
					if res.Makespan != shape.want {
						b.Fatalf("makespan %v, want %v", res.Makespan, shape.want)
					}
				}
			})
		}
	}
}

// BenchmarkCampaignScale measures the multi-tenant campaign layer at
// scale: 32 tenants, each enacting a 16-service wrapper chain over nD=100
// items, all contending for one shared DefaultConfig grid through the
// fair-share gate, with a heterogeneous optimization mix (SP+DP, SP+DP+JG,
// DP, batched SP+DP) and staggered arrival waves. Per-tenant makespans are
// captured on the first iteration and asserted identical on every
// subsequent one, so the benchmark doubles as a campaign determinism
// check; sim_s reports the campaign span and jobs the global submission
// count.
func BenchmarkCampaignScale(b *testing.B) {
	const nTenants, nServices, nD = 32, 16, 100
	mixes := []core.Options{
		{ServiceParallelism: true, DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
		{DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true,
			DataGroupSize: 8, DataGroupWindow: 2 * time.Minute},
	}
	build := func() campaign.Config {
		cfg := campaign.Config{Grid: grid.DefaultConfig()}
		for i := 0; i < nTenants; i++ {
			cfg.Tenants = append(cfg.Tenants, campaign.TenantSpec{
				Name:    fmt.Sprintf("t%02d", i),
				Arrival: time.Duration(i) * time.Minute,
				Opts:    mixes[i%len(mixes)],
				Build:   campaign.SyntheticChain(nServices, nD, 2*time.Minute, 5),
			})
		}
		return cfg
	}
	var first []time.Duration
	var span time.Duration
	var jobs int
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(build())
		if err != nil {
			b.Fatal(err)
		}
		makespans := make([]time.Duration, len(rep.Tenants))
		for j, tr := range rep.Tenants {
			if tr.Err != nil {
				b.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			makespans[j] = tr.Makespan
		}
		if first == nil {
			first = makespans
		} else {
			for j := range makespans {
				if makespans[j] != first[j] {
					b.Fatalf("tenant %d makespan not deterministic: %v vs %v",
						j, makespans[j], first[j])
				}
			}
		}
		span = rep.Makespan
		jobs = rep.Global.Jobs + rep.Global.Failed
	}
	b.ReportMetric(span.Seconds(), "sim_s")
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkFederationScale measures the federated brokering layer at
// scale: 16 tenants enacting 8-service wrapper chains over nD=100 items,
// brokered by the overhead-ranked policy across 4 heterogeneous member
// grids (cluster counts shrink and UI latencies grow from grid 0 to
// grid 3, seeds differ, cross-grid re-brokering enabled). Per-tenant
// makespans and per-grid dispatch counts are captured on the first
// iteration and asserted identical on every subsequent one, so the
// benchmark doubles as a federation determinism check; sim_s reports the
// campaign span, jobs the federation-wide terminal job count, and
// grids_used how many members the policy actually exercised.
func BenchmarkFederationScale(b *testing.B) {
	const nGrids, nTenants, nServices, nD = 4, 16, 8, 100
	mixes := []core.Options{
		{ServiceParallelism: true, DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
		{DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true,
			DataGroupSize: 8, DataGroupWindow: 2 * time.Minute},
	}
	tenants := func() []campaign.TenantSpec {
		specs := make([]campaign.TenantSpec, nTenants)
		for i := 0; i < nTenants; i++ {
			specs[i] = campaign.TenantSpec{
				Name:    fmt.Sprintf("t%02d", i),
				Arrival: time.Duration(i) * time.Minute,
				Opts:    mixes[i%len(mixes)],
				Build:   campaign.SyntheticChain(nServices, nD, 2*time.Minute, 5),
			}
		}
		return specs
	}
	var firstMakespans []time.Duration
	var firstDispatch []int
	var span time.Duration
	var jobs, used int
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:    federation.HeterogeneousSpecs(nGrids, 1),
			Policy:   federation.Ranked(),
			Rebroker: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := campaign.RunFederated(eng, fed, tenants())
		if err != nil {
			b.Fatal(err)
		}
		makespans := make([]time.Duration, len(rep.Tenants))
		for j, tr := range rep.Tenants {
			if tr.Err != nil {
				b.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			makespans[j] = tr.Makespan
		}
		dispatch := make([]int, fed.Size())
		used = 0
		for j := range dispatch {
			dispatch[j] = fed.Telemetry(j).Dispatched
			if dispatch[j] > 0 {
				used++
			}
		}
		if firstMakespans == nil {
			firstMakespans, firstDispatch = makespans, dispatch
		} else {
			for j := range makespans {
				if makespans[j] != firstMakespans[j] {
					b.Fatalf("tenant %d makespan not deterministic: %v vs %v",
						j, makespans[j], firstMakespans[j])
				}
			}
			for j := range dispatch {
				if dispatch[j] != firstDispatch[j] {
					b.Fatalf("grid %d dispatch count not deterministic: %d vs %d",
						j, dispatch[j], firstDispatch[j])
				}
			}
		}
		span = rep.Makespan
		jobs = rep.Global.Jobs + rep.Global.Failed
	}
	b.ReportMetric(span.Seconds(), "sim_s")
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(float64(used), "grids_used")
}

// BenchmarkFederationLocality measures the locality-aware brokering stack
// end to end: 16 tenants enact 6-service wrapper chains over nD=60 items
// across 4 heterogeneous member grids, every tenant's inputs fully
// resident on a home grid (homes rotate across members) and cross-grid
// fetches priced by the default WAN link model. The locality-aware ranked
// policy must therefore resolve a replica plan per pick and per stage-in
// — the hot path this benchmark times. Per-tenant makespans, per-grid
// dispatch counts and per-grid WAN bytes are captured on the first
// iteration and asserted identical on every subsequent one, so the
// benchmark doubles as a locality-stack determinism check; sim_s reports
// the campaign span, jobs the federation-wide terminal job count, wan_mb
// the WAN bytes actually moved, and grids_used how many members the
// policy exercised.
func BenchmarkFederationLocality(b *testing.B) {
	const nGrids, nTenants, nServices, nD = 4, 16, 6, 60
	mixes := []core.Options{
		{ServiceParallelism: true, DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
		{DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true,
			DataGroupSize: 8, DataGroupWindow: 2 * time.Minute},
	}
	var firstMakespans []time.Duration
	var firstDispatch []int
	var firstWAN []float64
	var span time.Duration
	var jobs, used int
	var wanMB float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:    federation.HeterogeneousSpecs(nGrids, 1),
			Policy:   federation.Ranked(),
			Rebroker: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		specs := make([]campaign.TenantSpec, nTenants)
		for j := 0; j < nTenants; j++ {
			home := grid.Site{Grid: fed.GridName(j % nGrids)}
			specs[j] = campaign.TenantSpec{
				Name:    fmt.Sprintf("t%02d", j),
				Arrival: time.Duration(j) * time.Minute,
				Opts:    mixes[j%len(mixes)],
				Build:   campaign.SyntheticChainPlaced(nServices, nD, 2*time.Minute, 5, home, 1),
			}
		}
		rep, err := campaign.RunFederated(eng, fed, specs)
		if err != nil {
			b.Fatal(err)
		}
		makespans := make([]time.Duration, len(rep.Tenants))
		for j, tr := range rep.Tenants {
			if tr.Err != nil {
				b.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			makespans[j] = tr.Makespan
		}
		dispatch := make([]int, fed.Size())
		wan := make([]float64, fed.Size())
		used, wanMB = 0, 0
		for j := range dispatch {
			// Grid.RemoteInMB counts the bytes actually moved (failed
			// attempts included), unlike the telemetry's completed-jobs
			// observation.
			dispatch[j], wan[j] = fed.Telemetry(j).Dispatched, fed.Grid(j).RemoteInMB()
			wanMB += wan[j]
			if dispatch[j] > 0 {
				used++
			}
		}
		if firstMakespans == nil {
			firstMakespans, firstDispatch, firstWAN = makespans, dispatch, wan
		} else {
			for j := range makespans {
				if makespans[j] != firstMakespans[j] {
					b.Fatalf("tenant %d makespan not deterministic: %v vs %v",
						j, makespans[j], firstMakespans[j])
				}
			}
			for j := range dispatch {
				if dispatch[j] != firstDispatch[j] {
					b.Fatalf("grid %d dispatch count not deterministic: %d vs %d",
						j, dispatch[j], firstDispatch[j])
				}
				if wan[j] != firstWAN[j] {
					b.Fatalf("grid %d WAN bytes not deterministic: %v vs %v",
						j, wan[j], firstWAN[j])
				}
			}
		}
		span = rep.Makespan
		jobs = rep.Global.Jobs + rep.Global.Failed
	}
	b.ReportMetric(span.Seconds(), "sim_s")
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(wanMB, "wan_mb")
	b.ReportMetric(float64(used), "grids_used")
}

// BenchmarkFederationContention measures the contended WAN fabric end to
// end: the BenchmarkFederationLocality scenario (16 tenants with
// grid-resident inputs across 4 heterogeneous grids, default WAN pricing)
// with every ordered grid pair squeezed to two concurrent fetch legs
// (Config.WANStreams = 2), so remote stage-ins queue on shared channels
// and the broker's stretch telemetry actually learns. Per-tenant
// makespans, per-grid dispatch counts, per-grid WAN bytes and per-grid
// WAN-wait seconds are captured on the first iteration and asserted
// identical on every subsequent one, so the benchmark doubles as a
// contended-fabric determinism check; sim_s reports the campaign span,
// jobs the federation-wide terminal job count, wan_mb the WAN bytes
// moved, and wan_wait_s the total channel-wait time the fabric induced.
func BenchmarkFederationContention(b *testing.B) {
	const nGrids, nTenants, nServices, nD = 4, 16, 6, 60
	mixes := []core.Options{
		{ServiceParallelism: true, DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
		{DataParallelism: true},
		{ServiceParallelism: true, DataParallelism: true,
			DataGroupSize: 8, DataGroupWindow: 2 * time.Minute},
	}
	var firstMakespans []time.Duration
	var firstWAN []float64
	var firstWait []time.Duration
	var span time.Duration
	var jobs int
	var wanMB float64
	var wanWait time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:      federation.HeterogeneousSpecs(nGrids, 1),
			Policy:     federation.Ranked(),
			Rebroker:   1,
			WANStreams: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		specs := make([]campaign.TenantSpec, nTenants)
		for j := 0; j < nTenants; j++ {
			home := grid.Site{Grid: fed.GridName(j % nGrids)}
			specs[j] = campaign.TenantSpec{
				Name:    fmt.Sprintf("t%02d", j),
				Arrival: time.Duration(j) * time.Minute,
				Opts:    mixes[j%len(mixes)],
				Build:   campaign.SyntheticChainPlaced(nServices, nD, 2*time.Minute, 5, home, 1),
			}
		}
		rep, err := campaign.RunFederated(eng, fed, specs)
		if err != nil {
			b.Fatal(err)
		}
		makespans := make([]time.Duration, len(rep.Tenants))
		for j, tr := range rep.Tenants {
			if tr.Err != nil {
				b.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			makespans[j] = tr.Makespan
		}
		wan := make([]float64, fed.Size())
		wait := make([]time.Duration, fed.Size())
		wanMB, wanWait = 0, 0
		for j := range wan {
			wan[j], wait[j] = fed.Grid(j).RemoteInMB(), fed.Grid(j).WANWait()
			wanMB += wan[j]
			wanWait += wait[j]
		}
		if firstMakespans == nil {
			firstMakespans, firstWAN, firstWait = makespans, wan, wait
		} else {
			for j := range makespans {
				if makespans[j] != firstMakespans[j] {
					b.Fatalf("tenant %d makespan not deterministic: %v vs %v",
						j, makespans[j], firstMakespans[j])
				}
			}
			for j := range wan {
				if wan[j] != firstWAN[j] {
					b.Fatalf("grid %d WAN bytes not deterministic: %v vs %v",
						j, wan[j], firstWAN[j])
				}
				if wait[j] != firstWait[j] {
					b.Fatalf("grid %d WAN wait not deterministic: %v vs %v",
						j, wait[j], firstWait[j])
				}
			}
		}
		span = rep.Makespan
		jobs = rep.Global.Jobs + rep.Global.Failed
	}
	b.ReportMetric(span.Seconds(), "sim_s")
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(wanMB, "wan_mb")
	b.ReportMetric(wanWait.Seconds(), "wan_wait_s")
}

// BenchmarkGridThroughput measures the raw event rate of the grid
// simulator: jobs completed per wall second under burst submission.
func BenchmarkGridThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cfg := grid.DefaultConfig()
		cfg.BackgroundHorizon = 6 * time.Hour
		g := grid.New(eng, cfg)
		done := 0
		for j := 0; j < 500; j++ {
			g.Submit(grid.JobSpec{Runtime: 5 * time.Minute}, func(*grid.JobRecord) { done++ })
		}
		for done < 500 && eng.Step() {
		}
		if done != 500 {
			b.Fatal("jobs lost")
		}
	}
}

// BenchmarkAblationSubmitLatency sweeps the serialized submission latency,
// the mechanism behind the residual slope under full data parallelism
// (DESIGN.md ablation): sim_s reports the SP+DP makespan at 66 pairs.
func BenchmarkAblationSubmitLatency(b *testing.B) {
	for _, submit := range []time.Duration{5 * time.Second, 20 * time.Second, 60 * time.Second} {
		b.Run(submit.String(), func(b *testing.B) {
			var last time.Duration
			for i := 0; i < b.N; i++ {
				p := bronze.DefaultParams()
				p.Grid.Overheads.SubmitMean = submit
				res, _, err := bronze.Run(66,
					core.Options{DataParallelism: true, ServiceParallelism: true}, p)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan
			}
			b.ReportMetric(last.Seconds(), "sim_s")
		})
	}
}

// BenchmarkAblationVariability removes the grid's stochastic sources one
// group at a time: with all variability off, service parallelism on top of
// data parallelism approaches the theoretical SSDP = 1 (constant-time
// hypothesis); with production-grade variance it pays off — the paper's
// central empirical observation, reproduced mechanistically.
func BenchmarkAblationVariability(b *testing.B) {
	variants := []struct {
		name string
		mod  func(*bronze.Params)
	}{
		{"production", func(*bronze.Params) {}},
		{"no-failures", func(p *bronze.Params) {
			p.Grid.Failures.Probability = 0
		}},
		{"deterministic", func(p *bronze.Params) {
			p.Grid.Failures.Probability = 0
			p.Grid.Overheads.SubmitSD = 0
			p.Grid.Overheads.BrokerSD = 0
			p.Grid.Overheads.DispatchSD = 0
			for i := range p.Grid.Clusters {
				p.Grid.Clusters[i].MinSpeed = 1
				p.Grid.Clusters[i].MaxSpeed = 1
				p.Grid.Clusters[i].BackgroundMeanIAT = 0 // background off
			}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				p := bronze.DefaultParams()
				v.mod(&p)
				dp, _, err := bronze.Run(36, core.Options{DataParallelism: true}, p)
				if err != nil {
					b.Fatal(err)
				}
				dsp, _, err := bronze.Run(36,
					core.Options{DataParallelism: true, ServiceParallelism: true}, p)
				if err != nil {
					b.Fatal(err)
				}
				gain = metrics.SpeedUp(dp.Makespan, dsp.Makespan)
			}
			b.ReportMetric(gain, "SP_gain_on_DP")
		})
	}
}

// BenchmarkAblationGrouping compares job counts and makespans with and
// without the grouping rewrite (Sec. 5.3).
func BenchmarkAblationGrouping(b *testing.B) {
	for _, jg := range []bool{false, true} {
		b.Run(fmt.Sprintf("jg=%v", jg), func(b *testing.B) {
			var last time.Duration
			var jobs int
			for i := 0; i < b.N; i++ {
				res, app, err := bronze.Run(36, core.Options{
					DataParallelism: true, ServiceParallelism: true, JobGrouping: jg,
				}, bronze.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan
				jobs = len(app.Grid.Records())
			}
			b.ReportMetric(last.Seconds(), "sim_s")
			b.ReportMetric(float64(jobs), "jobs")
		})
	}
}

// BenchmarkAblationDataGrouping sweeps the future-work optimization of
// Sec. 5.4 — batching several invocations of one service into a single
// job. Small batches pay more overhead; large batches forfeit data
// parallelism; the sweet spot depends on the grid load (sim_s at 36
// pairs, SP+DP).
func BenchmarkAblationDataGrouping(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
			var last time.Duration
			for i := 0; i < b.N; i++ {
				res, _, err := bronze.Run(36, core.Options{
					DataParallelism:    true,
					ServiceParallelism: true,
					DataGroupSize:      k,
					DataGroupWindow:    time.Minute,
				}, bronze.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				last = res.Makespan
			}
			b.ReportMetric(last.Seconds(), "sim_s")
		})
	}
}

// BenchmarkStorageChurn measures the active storage layer end to end:
// 4 heterogeneous grids whose storage elements have finite capacity and
// popularity-weighted eviction, a replicated reference corpus whose
// third copies are churned out under capacity pressure, a k=2
// replication floor that repairs every single-copy output up to two
// sites, and two correlated storage-outage windows that force in-flight
// fetch legs to re-stage from surviving replicas. Per-grid dispatch and
// re-staging counts, per-element eviction totals, repair totals and the
// terminal job mix are captured on the first iteration and asserted
// identical on every subsequent one, so the benchmark doubles as the
// storage-churn determinism check. sim_s reports the last terminal job
// time, jobs the terminal job count, evicted_mb the bytes drained under
// capacity pressure, repairs the replica copies the floor commissioned,
// restage_rounds the backed-off re-staging rounds the outages forced,
// and lost the jobs that failed with ErrReplicaLost.
func BenchmarkStorageChurn(b *testing.B) {
	const (
		nGrids = 4
		nFiles = 24
		nJobs  = 200
		fileMB = 30
	)
	var firstVec []string
	var span time.Duration
	var jobs, lost, restage int
	var evictedMB, repairedMB float64
	var repairs int
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:      federation.HeterogeneousSpecs(nGrids, 1),
			Policy:     federation.RankedSafe(),
			Rebroker:   1,
			WANStreams: 2,
			// 400 MB per element against a 540 MB corpus share: the
			// third corpus copies churn, the floor-protected ones stay.
			SECapacityMB: 400,
			SEEviction:   grid.EvictPopularity(),
			MinReplicas:  2,
			Outages: []federation.Outage{
				{Grid: "grid01", At: 20 * time.Minute, For: 15 * time.Minute, Storage: true},
				{Grid: "grid02", At: 25 * time.Minute, For: 15 * time.Minute, Storage: true},
				{Grid: "grid01", At: 60 * time.Minute, For: 10 * time.Minute, Storage: true},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cat := fed.Catalog()
		corpus := make([]string, nFiles)
		for j := 0; j < nFiles; j++ {
			corpus[j] = fmt.Sprintf("gfn://corpus/%03d", j)
			cat.RegisterAt(corpus[j], fileMB, grid.Site{Grid: fed.GridName(j % nGrids)})
			cat.AddReplica(corpus[j], grid.Site{Grid: fed.GridName((j + 1) % nGrids)})
			cat.AddReplica(corpus[j], grid.Site{Grid: fed.GridName((j + 2) % nGrids)})
		}
		for k := 0; k < nJobs; k++ {
			k := k
			eng.Schedule(sim.Time(k)*sim.Time(30*time.Second), func() {
				fed.Submit(grid.JobSpec{
					Name: fmt.Sprintf("job%03d", k),
					// Deterministic heavy tail: a hot head of 5 files
					// plus a quadratic scatter over the whole corpus.
					Inputs: []string{corpus[k%5], corpus[(k*k)%nFiles]},
					Outputs: []grid.FileDecl{
						{Name: fmt.Sprintf("gfn://derived/%03d", k), SizeMB: 40},
					},
					Runtime: time.Minute,
				}, func(*grid.JobRecord) {})
			})
		}
		eng.Run()

		var vec []string
		span, jobs, lost, restage, repairs = 0, 0, 0, 0, fed.Repairs()
		evictedMB, repairedMB = 0, fed.RepairedMB()
		for _, rec := range fed.Records() {
			jobs++
			if errors.Is(rec.Err, grid.ErrReplicaLost) {
				lost++
			}
			if t := time.Duration(rec.Completed); t > span {
				span = t
			}
		}
		for j := 0; j < fed.Size(); j++ {
			restage += int(fed.Grid(j).Restages())
			vec = append(vec, fmt.Sprintf("%s|%d|%d",
				fed.GridName(j), fed.Telemetry(j).Dispatched, fed.Grid(j).Restages()))
		}
		for _, st := range cat.SEStats() {
			evictedMB += st.EvictedMB
			vec = append(vec, fmt.Sprintf("%s/%s|%d|%.1f|%.1f",
				st.Site.Grid, st.Site.Cluster, st.Evictions, st.EvictedMB, st.PeakMB))
		}
		vec = append(vec, fmt.Sprintf("repairs|%d|%.1f|lost|%d", repairs, repairedMB, lost))
		if firstVec == nil {
			firstVec = vec
		} else {
			for j := range vec {
				if vec[j] != firstVec[j] {
					b.Fatalf("storage churn not deterministic at %d: %q vs %q", j, vec[j], firstVec[j])
				}
			}
		}
	}
	b.ReportMetric(span.Seconds(), "sim_s")
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(evictedMB, "evicted_mb")
	b.ReportMetric(float64(repairs), "repairs")
	b.ReportMetric(float64(restage), "restage_rounds")
	b.ReportMetric(float64(lost), "lost")
}
