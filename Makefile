GO ?= go

.PHONY: all build test vet bench campaign-bench clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark suite (paper tables, ablations, enactor scaling) with
# allocation stats; the raw output is kept for cross-change comparison.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_1.json

# Multi-tenant campaign benchmark (32 tenants on one shared grid); two
# iterations so the in-benchmark determinism assertion actually compares
# runs.
campaign-bench:
	$(GO) test -bench BenchmarkCampaignScale -benchmem -benchtime 2x -run '^$$' . | tee BENCH_2.json

clean:
	rm -f BENCH_1.json BENCH_2.json
