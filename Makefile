GO ?= go

.PHONY: all build test vet bench clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark suite (paper tables, ablations, enactor scaling) with
# allocation stats; the raw output is kept for cross-change comparison.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_1.json

clean:
	rm -f BENCH_1.json
