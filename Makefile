GO ?= go

.PHONY: all build test vet lint scenarios daemon-smoke bench campaign-bench federation-bench locality-bench wan-bench storage-bench scale-bench clean help

all: vet lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Determinism lint: build cmd/moteurvet (maprange, simtime, exporteddoc)
# and run it over every package through go vet's vettool protocol, so
# results are cached per package like any other vet check. gofmt rides
# along: the gate fails if any file needs reformatting.
lint:
	$(GO) build -o bin/moteurvet ./cmd/moteurvet
	$(GO) vet -vettool=$(abspath bin/moteurvet) ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: the following files need reformatting:"; echo "$$out"; exit 1; \
	fi

# Scenario library sweep: compile and run every scenarios/*.json and
# print one results row per scenario (span/p95/WAN-wait/restage). The
# same specs are pinned by the per-scenario determinism goldens in
# internal/scenario, so this sweep doubles as the CI smoke of the
# declarative world compiler.
scenarios:
	$(GO) run ./cmd/federation -scenarios 'scenarios/*.json'

# Online broker daemon smoke: boot moteurd on the clean baseline at high
# warp, submit a job over HTTP, assert /metrics serves the per-grid
# EWMAs, take a snapshot over HTTP, then SIGTERM and check the final
# on-disk snapshot landed. Exercises the whole daemon path end to end
# from outside the process, curl only.
daemon-smoke:
	$(GO) build -o bin/moteurd ./cmd/moteurd
	@set -e; \
	dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	bin/moteurd -scenario scenarios/clean-baseline.json -warp 100000 \
		-addr 127.0.0.1:18321 -snapshot-dir "$$dir" -snapshot-every 2s & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18321/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf http://127.0.0.1:18321/healthz >/dev/null; \
	curl -sf -X POST http://127.0.0.1:18321/submit \
		-d '{"tenant":"smoke","name":"probe","runtimeSeconds":30}' | grep -q '"ids"'; \
	curl -sf http://127.0.0.1:18321/metrics | grep -q 'moteur_grid_submit_ewma_seconds{grid="g0"}'; \
	curl -sf http://127.0.0.1:18321/metrics | grep -q 'moteur_grid_queue_ewma_seconds{grid="g1"}'; \
	curl -sf http://127.0.0.1:18321/snapshot | grep -q '"scenario": "clean-baseline"'; \
	kill -TERM $$pid; wait $$pid; \
	grep -q '"final": true' "$$dir/latest.json"; \
	echo "daemon-smoke: OK"

# Full benchmark suite (paper tables, ablations, enactor scaling) with
# allocation stats; the raw output is kept for cross-change comparison.
bench:
	$(GO) test -bench . -benchmem -run '^$$' . | tee BENCH_1.json

# Multi-tenant campaign benchmark (32 tenants on one shared grid); two
# iterations so the in-benchmark determinism assertion actually compares
# runs.
campaign-bench:
	$(GO) test -bench BenchmarkCampaignScale -benchmem -benchtime 2x -run '^$$' . | tee BENCH_2.json

# Federated brokering benchmark (16 tenants brokered across 4
# heterogeneous grids by the overhead-ranked policy, cross-grid
# re-brokering on); two iterations so the in-benchmark determinism
# assertion compares dispatch schedules across runs.
federation-bench:
	$(GO) test -bench BenchmarkFederationScale -benchmem -benchtime 2x -run '^$$' . | tee BENCH_3.json

# Locality-aware federated brokering benchmark (16 tenants with
# grid-resident inputs across 4 heterogeneous grids, default WAN link
# model, locality-aware ranked policy); two iterations so the in-benchmark
# determinism assertion compares makespans, dispatch schedules and WAN
# byte counts across runs.
locality-bench:
	$(GO) test -bench BenchmarkFederationLocality -benchmem -benchtime 2x -run '^$$' . | tee BENCH_4.json

# Contended WAN fabric benchmark (the locality scenario with two
# concurrent fetch legs per grid pair); two iterations so the in-benchmark
# determinism assertion compares makespans, WAN byte counts and per-grid
# WAN-wait seconds across runs.
wan-bench:
	$(GO) test -bench BenchmarkFederationContention -benchmem -benchtime 2x -run '^$$' . | tee BENCH_5.json

# Active-storage churn benchmark (finite storage elements, popularity
# eviction, k=2 replication repair, correlated storage outages); two
# iterations so the in-benchmark determinism assertion compares dispatch
# schedules, eviction totals and repair counts across runs.
storage-bench:
	$(GO) test -bench BenchmarkStorageChurn -benchmem -benchtime 2x -run '^$$' . | tee BENCH_6.json

# Metropolis-scale benchmark: 100k outputless jobs across 8 heterogeneous
# grids in 200 submission waves, run serial and parallel (per-grid event
# loops); the benchmark itself fails unless the two modes' result
# fingerprints are bit-identical, so the timing comparison is of the same
# computation. Two iterations so the in-benchmark determinism assertion
# also compares fingerprints across runs.
scale-bench:
	$(GO) test -bench BenchmarkFederationMetropolis -benchmem -benchtime 2x -run '^$$' . | tee BENCH_9.json

clean:
	rm -f BENCH_1.json BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json BENCH_6.json BENCH_9.json
	rm -rf bin

help:
	@echo "Targets:"
	@echo "  all              vet + lint + build + test"
	@echo "  build            go build ./..."
	@echo "  test             go test ./...   (tier-1 verify)"
	@echo "  vet              go vet ./..."
	@echo "  lint             determinism lint (cmd/moteurvet as vettool) + gofmt -l"
	@echo "  scenarios        run the scenarios/*.json library, one results row each"
	@echo "  daemon-smoke     boot moteurd, submit over HTTP, scrape /metrics, snapshot"
	@echo "  bench            full paper suite                      -> BENCH_1.json"
	@echo "  campaign-bench   32-tenant shared-grid campaign        -> BENCH_2.json"
	@echo "  federation-bench 4 grids x 16 tenants, ranked broker   -> BENCH_3.json"
	@echo "  locality-bench   skewed replicas over a WAN, ranked    -> BENCH_4.json"
	@echo "  wan-bench        contended per-pair WAN channels       -> BENCH_5.json"
	@echo "  storage-bench    SE capacity churn, eviction, repair   -> BENCH_6.json"
	@echo "  scale-bench      100k jobs x 8 grids, serial+parallel  -> BENCH_9.json"
	@echo "  clean            remove BENCH_*.json"
